/**
 * @file
 * Register liveness analysis over the CFG.
 *
 * Mini-graph formation needs to prove that values produced inside a
 * candidate are "interior" — consumed only inside the candidate and
 * dead afterwards — because interior values never receive physical
 * registers (that is the source of capacity amplification, §2).
 *
 * The analysis is a standard backward may-analysis at basic-block
 * granularity, iterated to a fixpoint.  Blocks that end in indirect
 * jumps (jr/jalr) are treated as having every register live-out, which
 * is conservative and therefore safe: it can only shrink the set of
 * provably-dead values.
 */

#ifndef MG_ASSEMBLER_LIVENESS_H
#define MG_ASSEMBLER_LIVENESS_H

#include <cstdint>
#include <vector>

#include "assembler/cfg.h"

namespace mg::assembler
{

/** Bit set over the 32 architectural registers. */
using RegSet = uint32_t;

/** Set/test helpers for RegSet. */
inline RegSet regBit(unsigned r) { return 1u << r; }
inline bool regIn(RegSet s, unsigned r) { return (s >> r) & 1u; }

/** Liveness results for one program. */
class Liveness
{
  public:
    /** Run the analysis over a CFG. */
    explicit Liveness(const Cfg &cfg);

    /** Registers live on entry to a block. */
    RegSet liveIn(uint32_t block_id) const { return liveInSets[block_id]; }

    /** Registers live on exit from a block. */
    RegSet liveOut(uint32_t block_id) const { return liveOutSets[block_id]; }

    /**
     * Registers live immediately *after* the instruction at pc
     * (i.e. just before pc+1 within the block, or the block live-out
     * at the block's last instruction).
     */
    RegSet liveAfter(isa::Addr pc) const { return liveAfterPc[pc]; }

    /**
     * Registers live immediately *before* the instruction at pc.
     */
    RegSet liveBefore(isa::Addr pc) const;

  private:
    const Cfg *cfg;
    std::vector<RegSet> liveInSets;
    std::vector<RegSet> liveOutSets;
    std::vector<RegSet> liveAfterPc;
};

} // namespace mg::assembler

#endif // MG_ASSEMBLER_LIVENESS_H
