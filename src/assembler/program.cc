#include "assembler/program.h"

#include <sstream>

#include "common/logging.h"

namespace mg::assembler
{

std::string
Program::listing() const
{
    // Invert the label map for annotation.
    std::map<isa::Addr, std::string> by_pc;
    for (const auto &[label, pc] : codeLabels)
        by_pc[pc] = label;

    std::ostringstream out;
    for (size_t pc = 0; pc < code.size(); ++pc) {
        auto it = by_pc.find(static_cast<isa::Addr>(pc));
        if (it != by_pc.end())
            out << it->second << ":\n";
        out << strprintf("  %5zu: %s\n", pc,
                         isa::disassemble(code[pc]).c_str());
    }
    return out.str();
}

} // namespace mg::assembler
