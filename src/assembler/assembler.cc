#include "assembler/assembler.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace mg::assembler
{

namespace
{

using isa::Addr;
using isa::Format;
using isa::Instruction;
using isa::Opcode;

/** One parsed source statement (label-stripped, comment-stripped). */
struct Statement
{
    int line = 0;
    std::string mnemonic;          // lower case
    std::vector<std::string> args; // comma-separated operand strings
};

/** Pseudo-op rewrite: mnemonic plus how to map its operands. */
struct PseudoInfo
{
    const char *realMnemonic;
    enum class Kind
    {
        Mov,   // mov rd, rs        -> addi rd, rs, 0
        La,    // la rd, label      -> li rd, addr
        B,     // b label           -> j label
        BleSwap, // ble a,b,l       -> bge b,a,l
        BgtSwap, // bgt a,b,l       -> blt b,a,l
        BleuSwap,// bleu a,b,l      -> bgeu b,a,l
        BgtuSwap,// bgtu a,b,l      -> bltu b,a,l
        Call,  // call label        -> jal ra, label
        Ret,   // ret               -> jr ra
        Neg,   // neg rd, rs        -> sub rd, zero, rs
        Not,   // not rd, rs        -> xori rd, rs, -1
        Beqz,  // beqz rs, l        -> beq rs, zero, l
        Bnez,  // bnez rs, l        -> bne rs, zero, l
    } kind;
};

const std::unordered_map<std::string, PseudoInfo> &
pseudoMap()
{
    static const std::unordered_map<std::string, PseudoInfo> map = {
        {"mov",  {"addi", PseudoInfo::Kind::Mov}},
        {"la",   {"li",   PseudoInfo::Kind::La}},
        {"b",    {"j",    PseudoInfo::Kind::B}},
        {"ble",  {"bge",  PseudoInfo::Kind::BleSwap}},
        {"bgt",  {"blt",  PseudoInfo::Kind::BgtSwap}},
        {"bleu", {"bgeu", PseudoInfo::Kind::BleuSwap}},
        {"bgtu", {"bltu", PseudoInfo::Kind::BgtuSwap}},
        {"call", {"jal",  PseudoInfo::Kind::Call}},
        {"ret",  {"jr",   PseudoInfo::Kind::Ret}},
        {"neg",  {"sub",  PseudoInfo::Kind::Neg}},
        {"not",  {"xori", PseudoInfo::Kind::Not}},
        {"beqz", {"beq",  PseudoInfo::Kind::Beqz}},
        {"bnez", {"bne",  PseudoInfo::Kind::Bnez}},
    };
    return map;
}

/** Assembler working state across both passes. */
class Assembler
{
  public:
    Assembler(std::string_view source, const AssembleOptions &options)
        : opts(options)
    {
        prog.name = opts.name;
        prog.dataBase = opts.dataBase;
        prog.memSize = opts.memSize;
        parseLines(source);
    }

    Program
    run()
    {
        passOne();
        passTwo();
        auto it = prog.codeLabels.find("main");
        prog.entry = (it != prog.codeLabels.end()) ? it->second : 0;
        return std::move(prog);
    }

  private:
    [[noreturn]] void
    err(int line, const char *fmt, auto... args)
    {
        mg_fatal("%s:%d: %s", opts.name.c_str(), line,
                 strprintf(fmt, args...).c_str());
    }

    /** Strip comments, extract labels, split statements. */
    void
    parseLines(std::string_view source)
    {
        int line_no = 0;
        for (const std::string &raw : split(source, '\n')) {
            ++line_no;
            std::string text = raw;
            size_t cpos = text.find_first_of(";#");
            if (cpos != std::string::npos)
                text.resize(cpos);
            text = trim(text);

            // Peel off any leading labels ("foo:").
            while (true) {
                size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                std::string label = trim(text.substr(0, colon));
                if (label.empty() ||
                    label.find_first_of(" \t") != std::string::npos) {
                    break;
                }
                pendingLabels.push_back({label, line_no});
                text = trim(text.substr(colon + 1));
            }
            if (text.empty())
                continue;

            Statement st;
            st.line = line_no;
            size_t sp = text.find_first_of(" \t");
            st.mnemonic = toLower(text.substr(0, sp));
            if (sp != std::string::npos) {
                std::string rest = trim(text.substr(sp));
                if (st.mnemonic == ".asciiz") {
                    st.args.push_back(rest);
                } else {
                    for (auto &a : split(rest, ','))
                        st.args.push_back(trim(a));
                }
            }
            st.args.erase(std::remove_if(st.args.begin(), st.args.end(),
                                         [](const std::string &s) {
                                             return s.empty();
                                         }),
                          st.args.end());
            attachLabels(st);
            statements.push_back(std::move(st));
        }
        // Labels at EOF with no following statement attach to a
        // synthetic end-of-data marker: record them in pass one.
        trailingLabels = std::move(pendingLabels);
    }

    struct PendingLabel
    {
        std::string name;
        int line;
    };

    void
    attachLabels(Statement &st)
    {
        labelsFor[statements.size()] = std::move(pendingLabels);
        pendingLabels.clear();
        (void)st;
    }

    enum class Section { Text, Data };

    /** Pass one: lay out code slots and data offsets, bind labels. */
    void
    passOne()
    {
        Section section = Section::Text;
        Addr pc = 0;
        uint64_t doff = 0;

        auto bind = [&](const PendingLabel &pl) {
            bool dup = prog.codeLabels.count(pl.name) ||
                       prog.dataLabels.count(pl.name);
            if (dup)
                err(pl.line, "duplicate label '%s'", pl.name.c_str());
            if (section == Section::Text)
                prog.codeLabels[pl.name] = pc;
            else
                prog.dataLabels[pl.name] = prog.dataBase + doff;
        };

        for (size_t i = 0; i < statements.size(); ++i) {
            const Statement &st = statements[i];
            if (st.mnemonic == ".text") {
                // Bind pending labels in the *new* section.
                section = Section::Text;
                for (const auto &pl : labelsFor[i])
                    bind(pl);
                continue;
            }
            if (st.mnemonic == ".data") {
                section = Section::Data;
                for (const auto &pl : labelsFor[i])
                    bind(pl);
                continue;
            }
            for (const auto &pl : labelsFor[i])
                bind(pl);

            if (section == Section::Text) {
                if (st.mnemonic[0] == '.')
                    err(st.line, "directive '%s' not allowed in .text",
                        st.mnemonic.c_str());
                pc += 1; // every mnemonic (incl. pseudo) is one slot
            } else {
                doff += dataSizeOf(st, doff);
            }
        }
        for (const auto &pl : trailingLabels) {
            if (section == Section::Text)
                prog.codeLabels[pl.name] = pc;
            else
                prog.dataLabels[pl.name] = prog.dataBase + doff;
        }
        codeSlots = pc;
        prog.code.reserve(pc);
        prog.dataInit.resize(doff, 0);
        if (prog.dataBase + doff > prog.memSize)
            mg_fatal("program '%s': data segment (%llu bytes) exceeds "
                     "memory size", opts.name.c_str(),
                     static_cast<unsigned long long>(doff));
    }

    /** Size in bytes of a data directive at the given offset. */
    uint64_t
    dataSizeOf(const Statement &st, uint64_t doff)
    {
        if (st.mnemonic == ".byte")
            return st.args.size();
        if (st.mnemonic == ".half")
            return st.args.size() * 2;
        if (st.mnemonic == ".word")
            return st.args.size() * 4;
        if (st.mnemonic == ".dword")
            return st.args.size() * 8;
        if (st.mnemonic == ".space") {
            int64_t n;
            if (st.args.size() != 1 || !parseInt(st.args[0], n) || n < 0)
                err(st.line, ".space requires one non-negative integer");
            return static_cast<uint64_t>(n);
        }
        if (st.mnemonic == ".align") {
            int64_t n;
            if (st.args.size() != 1 || !parseInt(st.args[0], n) || n <= 0)
                err(st.line, ".align requires one positive integer");
            uint64_t a = static_cast<uint64_t>(n);
            return (a - (doff % a)) % a;
        }
        if (st.mnemonic == ".asciiz") {
            std::string s = decodeString(st);
            return s.size() + 1;
        }
        err(st.line, "unknown data directive '%s'", st.mnemonic.c_str());
    }

    std::string
    decodeString(const Statement &st)
    {
        if (st.args.size() != 1 || st.args[0].size() < 2 ||
            st.args[0].front() != '"' || st.args[0].back() != '"') {
            err(st.line, ".asciiz requires one quoted string");
        }
        std::string_view body(st.args[0]);
        body = body.substr(1, body.size() - 2);
        std::string out;
        for (size_t i = 0; i < body.size(); ++i) {
            if (body[i] == '\\' && i + 1 < body.size()) {
                ++i;
                switch (body[i]) {
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case '0': out.push_back('\0'); break;
                  case '\\': out.push_back('\\'); break;
                  case '"': out.push_back('"'); break;
                  default: out.push_back(body[i]); break;
                }
            } else {
                out.push_back(body[i]);
            }
        }
        return out;
    }

    /** Resolve "label", "label+n", or integer to a 64-bit value. */
    int64_t
    resolveValue(const Statement &st, std::string_view expr)
    {
        int64_t v;
        if (parseInt(expr, v))
            return v;
        std::string_view base = expr;
        int64_t addend = 0;
        size_t plus = expr.find_last_of("+-");
        if (plus != std::string::npos && plus > 0) {
            int64_t a;
            if (parseInt(expr.substr(plus), a)) {
                base = expr.substr(0, plus);
                addend = a;
            }
        }
        std::string key{trim(base)};
        if (auto it = prog.dataLabels.find(key); it != prog.dataLabels.end())
            return static_cast<int64_t>(it->second) + addend;
        if (auto it = prog.codeLabels.find(key); it != prog.codeLabels.end())
            return static_cast<int64_t>(it->second) + addend;
        err(st.line, "undefined symbol '%s'", key.c_str());
    }

    uint8_t
    reg(const Statement &st, const std::string &token)
    {
        int r = parseRegister(token);
        if (r < 0)
            err(st.line, "bad register '%s'", token.c_str());
        return static_cast<uint8_t>(r);
    }

    void
    wantArgs(const Statement &st, size_t n)
    {
        if (st.args.size() != n) {
            err(st.line, "'%s' expects %zu operand(s), got %zu",
                st.mnemonic.c_str(), n, st.args.size());
        }
    }

    /** Parse "imm(reg)", "label(reg)", "label", "imm", "(reg)". */
    void
    parseMemOperand(const Statement &st, const std::string &token,
                    uint8_t &base_reg, int64_t &imm)
    {
        size_t open = token.find('(');
        if (open == std::string::npos) {
            base_reg = isa::kZeroReg;
            imm = resolveValue(st, token);
            return;
        }
        if (token.back() != ')')
            err(st.line, "malformed memory operand '%s'", token.c_str());
        std::string inner =
            trim(token.substr(open + 1, token.size() - open - 2));
        base_reg = reg(st, inner);
        std::string off = trim(token.substr(0, open));
        imm = off.empty() ? 0 : resolveValue(st, off);
    }

    /** Pass two: encode each statement. */
    void
    passTwo()
    {
        Section section = Section::Text;
        uint64_t doff = 0;

        for (const Statement &orig : statements) {
            if (orig.mnemonic == ".text") {
                section = Section::Text;
                continue;
            }
            if (orig.mnemonic == ".data") {
                section = Section::Data;
                continue;
            }
            if (section == Section::Data) {
                emitData(orig, doff);
                continue;
            }
            emitInstruction(orig);
        }
    }

    void
    emitData(const Statement &st, uint64_t &doff)
    {
        auto poke = [&](uint64_t v, unsigned bytes) {
            for (unsigned b = 0; b < bytes; ++b)
                prog.dataInit[doff++] = static_cast<uint8_t>(v >> (8 * b));
        };
        if (st.mnemonic == ".byte" || st.mnemonic == ".half" ||
            st.mnemonic == ".word" || st.mnemonic == ".dword") {
            unsigned bytes = st.mnemonic == ".byte"  ? 1
                           : st.mnemonic == ".half"  ? 2
                           : st.mnemonic == ".word"  ? 4
                                                     : 8;
            for (const auto &a : st.args) {
                int64_t v = resolveValue(st, a);
                // Accept anything representable at this width, signed
                // or unsigned; silently truncating a wide value would
                // corrupt the data image.
                if (bytes < 8) {
                    int64_t lo = -(1ll << (8 * bytes - 1));
                    int64_t hi = (1ll << (8 * bytes)) - 1;
                    if (v < lo || v > hi)
                        err(st.line,
                            "value %lld does not fit in '%s' "
                            "(range %lld..%lld)",
                            static_cast<long long>(v),
                            st.mnemonic.c_str(),
                            static_cast<long long>(lo),
                            static_cast<long long>(hi));
                }
                poke(static_cast<uint64_t>(v), bytes);
            }
        } else if (st.mnemonic == ".space") {
            int64_t n = 0;
            parseInt(st.args[0], n);
            doff += static_cast<uint64_t>(n);
        } else if (st.mnemonic == ".align") {
            doff += dataSizeOf(st, doff);
        } else if (st.mnemonic == ".asciiz") {
            std::string s = decodeString(st);
            for (char c : s)
                prog.dataInit[doff++] = static_cast<uint8_t>(c);
            prog.dataInit[doff++] = 0;
        }
    }

    void
    emitInstruction(const Statement &orig)
    {
        Statement st = orig;
        // Expand pseudo-ops into real statements.
        if (auto it = pseudoMap().find(st.mnemonic);
            it != pseudoMap().end()) {
            const PseudoInfo &pi = it->second;
            using K = PseudoInfo::Kind;
            switch (pi.kind) {
              case K::Mov:
                wantArgs(st, 2);
                st.args.push_back("0");
                break;
              case K::La:
                wantArgs(st, 2);
                break;
              case K::B:
                wantArgs(st, 1);
                break;
              case K::BleSwap:
              case K::BgtSwap:
              case K::BleuSwap:
              case K::BgtuSwap:
                wantArgs(st, 3);
                std::swap(st.args[0], st.args[1]);
                break;
              case K::Call:
                wantArgs(st, 1);
                st.args.insert(st.args.begin(), "ra");
                break;
              case K::Ret:
                wantArgs(st, 0);
                st.args.push_back("ra");
                break;
              case K::Neg:
                wantArgs(st, 2);
                st.args.insert(st.args.begin() + 1, "zero");
                break;
              case K::Not:
                wantArgs(st, 2);
                st.args.push_back("-1");
                break;
              case K::Beqz:
              case K::Bnez:
                wantArgs(st, 2);
                st.args.insert(st.args.begin() + 1, "zero");
                break;
            }
            st.mnemonic = pi.realMnemonic;
        }

        auto opc = isa::parseMnemonic(st.mnemonic);
        if (!opc)
            err(st.line, "unknown mnemonic '%s'", st.mnemonic.c_str());

        Instruction inst;
        inst.op = *opc;
        const isa::OpInfo &info = isa::opInfo(*opc);
        switch (info.format) {
          case Format::RRR:
            wantArgs(st, 3);
            inst.rd = reg(st, st.args[0]);
            inst.rs1 = reg(st, st.args[1]);
            inst.rs2 = reg(st, st.args[2]);
            break;
          case Format::RRI:
            wantArgs(st, 3);
            inst.rd = reg(st, st.args[0]);
            inst.rs1 = reg(st, st.args[1]);
            inst.imm = resolveValue(st, st.args[2]);
            break;
          case Format::RI:
            wantArgs(st, 2);
            inst.rd = reg(st, st.args[0]);
            inst.imm = resolveValue(st, st.args[1]);
            break;
          case Format::Load:
            wantArgs(st, 2);
            inst.rd = reg(st, st.args[0]);
            parseMemOperand(st, st.args[1], inst.rs1, inst.imm);
            break;
          case Format::Store:
            wantArgs(st, 2);
            inst.rs2 = reg(st, st.args[0]);
            parseMemOperand(st, st.args[1], inst.rs1, inst.imm);
            break;
          case Format::Branch:
            wantArgs(st, 3);
            inst.rs1 = reg(st, st.args[0]);
            inst.rs2 = reg(st, st.args[1]);
            inst.imm = resolveValue(st, st.args[2]);
            break;
          case Format::JTarget:
            wantArgs(st, 1);
            inst.imm = resolveValue(st, st.args[0]);
            break;
          case Format::JLink:
            wantArgs(st, 2);
            inst.rd = reg(st, st.args[0]);
            inst.imm = resolveValue(st, st.args[1]);
            break;
          case Format::JReg:
            wantArgs(st, 1);
            inst.rs1 = reg(st, st.args[0]);
            break;
          case Format::JLinkReg:
            wantArgs(st, 2);
            inst.rd = reg(st, st.args[0]);
            inst.rs1 = reg(st, st.args[1]);
            break;
          case Format::None:
            wantArgs(st, 0);
            break;
          case Format::Handle:
            err(st.line, "mghandle cannot be written in assembly source");
        }
        validate(st, inst, info);
        prog.code.push_back(inst);
    }

    /**
     * Encode-time range checks.  Without these a bad shift count is
     * silently masked by the ALU and a dangling branch target only
     * traps (or wanders into data) at run time; a stable line-tagged
     * diagnostic here is worth much more than either.
     */
    void
    validate(const Statement &st, const Instruction &inst,
             const isa::OpInfo &info)
    {
        using isa::Opcode;
        if ((inst.op == Opcode::SLLI || inst.op == Opcode::SRLI ||
             inst.op == Opcode::SRAI) &&
            (inst.imm < 0 || inst.imm > 63)) {
            err(st.line, "shift immediate %lld out of range 0..63",
                static_cast<long long>(inst.imm));
        }
        if (info.format == Format::Branch ||
            info.format == Format::JTarget ||
            info.format == Format::JLink) {
            if (inst.imm < 0 ||
                inst.imm >= static_cast<int64_t>(codeSlots)) {
                err(st.line,
                    "branch target %lld outside code (0..%llu)",
                    static_cast<long long>(inst.imm),
                    static_cast<unsigned long long>(codeSlots) - 1);
            }
        }
    }

    AssembleOptions opts;
    Program prog;
    uint64_t codeSlots = 0;
    std::vector<Statement> statements;
    std::unordered_map<size_t, std::vector<PendingLabel>> labelsFor;
    std::vector<PendingLabel> pendingLabels;
    std::vector<PendingLabel> trailingLabels;
};

} // namespace

int
parseRegister(std::string_view token)
{
    std::string t = toLower(trim(token));
    if (t == "zero")
        return 0;
    if (t == "sp")
        return isa::kStackReg;
    if (t == "ra")
        return isa::kLinkReg;
    if (t.size() >= 2 && t[0] == 'r') {
        int64_t n;
        if (parseInt(t.substr(1), n) && n >= 0 &&
            n < static_cast<int64_t>(isa::kNumArchRegs)) {
            return static_cast<int>(n);
        }
    }
    return -1;
}

Program
assemble(std::string_view source, const AssembleOptions &opts)
{
    return Assembler(source, opts).run();
}

} // namespace mg::assembler
