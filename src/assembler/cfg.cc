#include "assembler/cfg.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace mg::assembler
{

using isa::Addr;
using isa::Instruction;
using isa::Opcode;

Cfg::Cfg(const Program &program) : prog(&program)
{
    const auto &code = program.code;
    if (code.empty())
        return;

    // Leaders: entry, control targets, fall-throughs of control.
    std::set<Addr> leaders;
    leaders.insert(program.entry);
    leaders.insert(0);
    for (Addr pc = 0; pc < code.size(); ++pc) {
        const Instruction &inst = code[pc];
        if (inst.isDirectControl()) {
            Addr target = static_cast<Addr>(inst.imm);
            mg_assert(target < code.size(),
                      "control target %u out of range at pc %u", target, pc);
            leaders.insert(target);
        }
        if (inst.isControl() || inst.isHalt()) {
            if (pc + 1 < code.size())
                leaders.insert(pc + 1);
        }
    }

    // Carve blocks between consecutive leaders.
    std::vector<Addr> sorted(leaders.begin(), leaders.end());
    pcToBlock.assign(code.size(), 0);
    for (size_t i = 0; i < sorted.size(); ++i) {
        BasicBlock bb;
        bb.id = static_cast<uint32_t>(i);
        bb.first = sorted[i];
        bb.last = (i + 1 < sorted.size())
                      ? sorted[i + 1] - 1
                      : static_cast<Addr>(code.size() - 1);
        const Instruction &end = code[bb.last];
        bb.endsIndirect = end.isIndirectControl();
        blockList.push_back(bb);
        for (Addr pc = bb.first; pc <= bb.last; ++pc)
            pcToBlock[pc] = bb.id;
    }

    // Wire successor / predecessor edges.
    for (BasicBlock &bb : blockList) {
        const Instruction &end = code[bb.last];
        auto link = [&](Addr target_pc) {
            if (target_pc >= code.size())
                return;
            uint32_t succ = pcToBlock[target_pc];
            bb.succs.push_back(succ);
            blockList[succ].preds.push_back(bb.id);
        };
        if (end.isCondBranch()) {
            link(static_cast<Addr>(end.imm));
            link(bb.last + 1);
        } else if (end.op == Opcode::J) {
            link(static_cast<Addr>(end.imm));
        } else if (end.op == Opcode::JAL) {
            // A call both transfers to the target and (eventually)
            // resumes at the return point; model both edges so
            // liveness sees values that survive across the call.
            link(static_cast<Addr>(end.imm));
            link(bb.last + 1);
        } else if (end.isIndirectControl()) {
            // No static successors; liveness treats this as an exit
            // with everything live.
        } else if (end.isHalt()) {
            // Program exit: no successors.
        } else {
            link(bb.last + 1);
        }
    }
}

const BasicBlock &
Cfg::blockOf(Addr pc) const
{
    return blockList[blockIdOf(pc)];
}

uint32_t
Cfg::blockIdOf(Addr pc) const
{
    mg_assert(pc < pcToBlock.size(), "pc %u outside program", pc);
    return pcToBlock[pc];
}

} // namespace mg::assembler
