/**
 * @file
 * Control-flow graph and basic-block discovery over a Program.
 *
 * Mini-graph candidates live inside basic blocks (atomicity restricts
 * mini-graphs to basic blocks, §2 of the paper), so the selection
 * pipeline starts here.  Indirect jumps (jr/jalr) end blocks and have
 * no static successors; liveness treats them conservatively.
 */

#ifndef MG_ASSEMBLER_CFG_H
#define MG_ASSEMBLER_CFG_H

#include <cstdint>
#include <vector>

#include "assembler/program.h"

namespace mg::assembler
{

/** One basic block: PCs [first, last] inclusive. */
struct BasicBlock
{
    uint32_t id = 0;
    isa::Addr first = 0;
    isa::Addr last = 0;
    std::vector<uint32_t> succs; ///< successor block ids
    std::vector<uint32_t> preds; ///< predecessor block ids

    /** True if the block ends in jr/jalr (statically unknown target). */
    bool endsIndirect = false;

    /** Number of instructions in the block. */
    uint32_t size() const { return last - first + 1; }
};

/** Control-flow graph: blocks in ascending PC order. */
class Cfg
{
  public:
    /** Build the CFG of a program. */
    explicit Cfg(const Program &prog);

    const std::vector<BasicBlock> &blocks() const { return blockList; }

    /** Block containing the given PC. */
    const BasicBlock &blockOf(isa::Addr pc) const;

    /** Block id containing the given PC. */
    uint32_t blockIdOf(isa::Addr pc) const;

    const Program &program() const { return *prog; }

  private:
    const Program *prog;
    std::vector<BasicBlock> blockList;
    std::vector<uint32_t> pcToBlock; ///< PC -> block id
};

} // namespace mg::assembler

#endif // MG_ASSEMBLER_CFG_H
