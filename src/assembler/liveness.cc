#include "assembler/liveness.h"

#include "common/logging.h"

namespace mg::assembler
{

using isa::Addr;
using isa::Instruction;

namespace
{

constexpr RegSet kAllRegs = 0xffffffffu;

/** use/def transfer of a single instruction. */
void
useDef(const Instruction &inst, RegSet &use, RegSet &def)
{
    auto srcs = inst.srcRegs();
    for (uint8_t i = 0; i < srcs.count; ++i) {
        unsigned r = srcs.regs[i];
        if (!regIn(def, r))
            use |= regBit(r);
    }
    int d = inst.destReg();
    if (d >= 0)
        def |= regBit(static_cast<unsigned>(d));
}

} // namespace

Liveness::Liveness(const Cfg &cfg_ref) : cfg(&cfg_ref)
{
    const auto &blocks = cfg->blocks();
    const auto &code = cfg->program().code;
    size_t n = blocks.size();

    // Per-block use/def summaries.
    std::vector<RegSet> use(n, 0), def(n, 0);
    for (size_t b = 0; b < n; ++b) {
        for (Addr pc = blocks[b].first; pc <= blocks[b].last; ++pc)
            useDef(code[pc], use[b], def[b]);
    }

    liveInSets.assign(n, 0);
    liveOutSets.assign(n, 0);

    // Backward fixpoint.  Blocks ending in indirect control have all
    // registers live-out (unknown continuation).
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = n; i-- > 0;) {
            const BasicBlock &bb = blocks[i];
            RegSet out = bb.endsIndirect ? kAllRegs : 0;
            for (uint32_t s : bb.succs)
                out |= liveInSets[s];
            RegSet in = use[i] | (out & ~def[i]);
            if (out != liveOutSets[i] || in != liveInSets[i]) {
                liveOutSets[i] = out;
                liveInSets[i] = in;
                changed = true;
            }
        }
    }

    // Per-PC live-after sets via a backward scan of each block.
    liveAfterPc.assign(code.size(), 0);
    for (size_t b = 0; b < n; ++b) {
        const BasicBlock &bb = blocks[b];
        RegSet live = liveOutSets[b];
        for (Addr pc = bb.last + 1; pc-- > bb.first;) {
            liveAfterPc[pc] = live;
            const Instruction &inst = code[pc];
            int d = inst.destReg();
            if (d >= 0)
                live &= ~regBit(static_cast<unsigned>(d));
            auto srcs = inst.srcRegs();
            for (uint8_t s = 0; s < srcs.count; ++s)
                live |= regBit(srcs.regs[s]);
            if (pc == bb.first)
                break;
        }
    }
}

RegSet
Liveness::liveBefore(isa::Addr pc) const
{
    const auto &code = cfg->program().code;
    mg_assert(pc < code.size(), "pc %u outside program", pc);
    RegSet live = liveAfterPc[pc];
    const Instruction &inst = code[pc];
    int d = inst.destReg();
    if (d >= 0)
        live &= ~regBit(static_cast<unsigned>(d));
    auto srcs = inst.srcRegs();
    for (uint8_t s = 0; s < srcs.count; ++s)
        live |= regBit(srcs.regs[s]);
    return live;
}

} // namespace mg::assembler
