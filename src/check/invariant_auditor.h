/**
 * @file
 * End-of-cycle pipeline invariant auditor for the timing core.
 *
 * The auditor re-derives the structural invariants the out-of-order
 * model is supposed to maintain and throws mg::CheckError (via
 * mg_check) on the first violation, naming the violated class:
 *
 *   [rob]         seq window sanity, slot integrity, occupancy bound
 *   [fetchq]      fetch-queue seq contiguity with the ROB tail
 *   [free-list]   physical-register conservation:
 *                 free + in-flight dests == physRegs - kNumArchRegs
 *   [rename]      rename map points at the youngest in-flight producer
 *   [iq]          occupancy bound, age order, inIq/issued consistency
 *   [lq]/[sq]     occupancy bounds, age order, membership <-> mem kind
 *   [issue-ready] nothing issued before its actual operand readiness
 *   [storesets]   no load issued past a predicted-conflicting store
 *                 whose address was still unknown
 *   [mg-slots]    handle slot amplification: one ROB/IQ/rename slot,
 *                 template-sized constituent record, interface bounds
 *   [accounting]  commit accounting conservation (original-instruction
 *                 reconstruction, coverage vs handles, Delta-units ==
 *                 Delta-headSeq)
 *   [sdwatch]     Slack-Dynamic consumer watch only tracks in-flight
 *                 producers
 *
 * CheckLevel::Cheap runs the O(1) subset (bounds and accounting) every
 * cycle; CheckLevel::Full additionally walks the in-flight window.
 *
 * Layering: this lives in mg_check, *below* mg_uarch.  It reads
 * uarch::Core's private state (as a friend) through headers only and
 * calls no mg_uarch out-of-line code, so mg_uarch can link mg_check
 * without a cycle.
 */

#ifndef MG_CHECK_INVARIANT_AUDITOR_H
#define MG_CHECK_INVARIANT_AUDITOR_H

#include <cstdint>

#include "uarch/config.h"

namespace mg::uarch
{
class Core;
struct DynInst;
}

namespace mg::check
{

/** Per-core auditor instance (owns cross-cycle snapshots). */
class InvariantAuditor
{
  public:
    explicit InvariantAuditor(uarch::CheckLevel check_level)
        : level(check_level)
    {
    }

    /**
     * Audit one finished cycle.  Throws mg::CheckError on the first
     * violated invariant.
     *
     * @param core  the core, after all stages of `cycle` ran
     * @param cycle the just-finished cycle number
     */
    void endOfCycle(const uarch::Core &core, uint64_t cycle);

    /** Number of cycles audited so far (tests / reporting). */
    uint64_t cyclesAudited() const { return audited; }

    uarch::CheckLevel checkLevel() const { return level; }

  private:
    void auditCheap(const uarch::Core &core, uint64_t cycle);
    void auditFull(const uarch::Core &core, uint64_t cycle);

    // Local re-implementations of Core's seq arithmetic: the auditor
    // must not inherit a bug in the helpers it is auditing.  Static
    // members (not free functions) so friendship covers them.
    static const uarch::DynInst &robAt(const uarch::Core &c,
                                       uint64_t seq);
    static bool inFlight(const uarch::Core &c, uint64_t seq);
    static uint32_t renamePool(const uarch::Core &c);

    uarch::CheckLevel level;
    uint64_t audited = 0;

    // Previous-cycle snapshot for the commit-delta invariant.
    bool havePrev = false;
    uint64_t prevHeadSeq = 0;
    uint64_t prevCommittedUnits = 0;
};

} // namespace mg::check

#endif // MG_CHECK_INVARIANT_AUDITOR_H
