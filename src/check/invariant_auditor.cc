#include "check/invariant_auditor.h"

#include <algorithm>
#include <array>

#include "common/logging.h"
#include "isa/minigraph_types.h"
#include "uarch/core.h"
#include "uarch/store_sets.h"

namespace mg::check
{

using uarch::Core;
using uarch::DynInst;
using uarch::kCommitted;

const DynInst &
InvariantAuditor::robAt(const Core &c, uint64_t seq)
{
    return c.rob[seq % c.rob.size()];
}

bool
InvariantAuditor::inFlight(const Core &c, uint64_t seq)
{
    return seq >= c.headSeq && seq < c.tailSeq &&
           robAt(c, seq).seq == seq;
}

uint32_t
InvariantAuditor::renamePool(const Core &c)
{
    return c.cfg.physRegs - isa::kNumArchRegs;
}

void
InvariantAuditor::endOfCycle(const Core &core, uint64_t cycle)
{
    if (level == uarch::CheckLevel::Off)
        return;
    auditCheap(core, cycle);
    if (level == uarch::CheckLevel::Full)
        auditFull(core, cycle);
    havePrev = true;
    prevHeadSeq = core.headSeq;
    prevCommittedUnits = core.res.committedUnits;
    ++audited;
}

void
InvariantAuditor::auditCheap(const Core &core, uint64_t cycle)
{
    // --- [rob] window sanity and occupancy bound ---
    mg_check(core.headSeq <= core.tailSeq && core.tailSeq <= core.nextSeq,
             "[rob] seq window corrupt: head=%llu tail=%llu next=%llu "
             "(cycle %llu)",
             static_cast<unsigned long long>(core.headSeq),
             static_cast<unsigned long long>(core.tailSeq),
             static_cast<unsigned long long>(core.nextSeq),
             static_cast<unsigned long long>(cycle));
    mg_check(core.tailSeq - core.headSeq <= core.cfg.robEntries,
             "[rob] occupancy %llu exceeds %u entries (cycle %llu)",
             static_cast<unsigned long long>(core.tailSeq - core.headSeq),
             core.cfg.robEntries, static_cast<unsigned long long>(cycle));

    // --- [iq]/[lq]/[sq] occupancy bounds ---
    mg_check(core.iq.size() <= core.cfg.issueQueueEntries,
             "[iq] occupancy %zu exceeds %u entries (cycle %llu)",
             core.iq.size(), core.cfg.issueQueueEntries,
             static_cast<unsigned long long>(cycle));
    mg_check(core.lq.size() <= core.cfg.loadQueueEntries,
             "[lq] occupancy %zu exceeds %u entries (cycle %llu)",
             core.lq.size(), core.cfg.loadQueueEntries,
             static_cast<unsigned long long>(cycle));
    mg_check(core.sq.size() <= core.cfg.storeQueueEntries,
             "[sq] occupancy %zu exceeds %u entries (cycle %llu)",
             core.sq.size(), core.cfg.storeQueueEntries,
             static_cast<unsigned long long>(cycle));

    // --- [free-list] free count never exceeds the rename pool ---
    mg_check(core.freePhys <= renamePool(core),
             "[free-list] %u registers free but the rename pool only "
             "holds %u (cycle %llu)",
             core.freePhys, renamePool(core),
             static_cast<unsigned long long>(cycle));

    // --- [accounting] commit accounting conservation ---
    //
    // Every commit "unit" is a singleton (1 original instruction), a
    // handle (0 directly, tmpl->size() covered) or an outlining jump
    // (0).  Hence, cumulatively:
    const uarch::SimResult &r = core.res;
    mg_check(r.originalInsts == r.committedUnits - r.committedHandles -
                                    r.outliningJumps + r.coveredInsts,
             "[accounting] originalInsts=%llu != units=%llu - "
             "handles=%llu - jumps=%llu + covered=%llu (cycle %llu)",
             static_cast<unsigned long long>(r.originalInsts),
             static_cast<unsigned long long>(r.committedUnits),
             static_cast<unsigned long long>(r.committedHandles),
             static_cast<unsigned long long>(r.outliningJumps),
             static_cast<unsigned long long>(r.coveredInsts),
             static_cast<unsigned long long>(cycle));
    // A mini-graph has at least two constituents, so coverage credit
    // must amplify handle commits at least 2x.
    mg_check(r.coveredInsts >= 2 * r.committedHandles,
             "[accounting] covered=%llu < 2 * handles=%llu: some handle "
             "was credited fewer than 2 constituents (cycle %llu)",
             static_cast<unsigned long long>(r.coveredInsts),
             static_cast<unsigned long long>(r.committedHandles),
             static_cast<unsigned long long>(cycle));

    // --- [loss] cycle-loss accounting identity (docs/TRACING.md) ---
    //
    // When loss accounting is on, the charged buckets must sum to
    // exactly the retirement slots the run did not fill, every cycle:
    // commitWidth * cycles - committedUnits.
    if (core.cfg.lossAccounting) {
        uint64_t total =
            static_cast<uint64_t>(core.cfg.commitWidth) * cycle;
        uint64_t lost = total - r.committedUnits;
        mg_check(r.lossSum() == lost,
                 "[loss] buckets sum to %llu but %llu retirement slots "
                 "were lost (width %u x %llu cycles - %llu units)",
                 static_cast<unsigned long long>(r.lossSum()),
                 static_cast<unsigned long long>(lost),
                 core.cfg.commitWidth,
                 static_cast<unsigned long long>(cycle),
                 static_cast<unsigned long long>(r.committedUnits));
    }

    // Commit is the only headSeq mutation, one unit per retired slot.
    if (havePrev) {
        mg_check(core.headSeq - prevHeadSeq ==
                     r.committedUnits - prevCommittedUnits,
                 "[accounting] headSeq advanced %llu but committedUnits "
                 "advanced %llu this cycle (cycle %llu)",
                 static_cast<unsigned long long>(core.headSeq -
                                                 prevHeadSeq),
                 static_cast<unsigned long long>(r.committedUnits -
                                                 prevCommittedUnits),
                 static_cast<unsigned long long>(cycle));
    }
}

void
InvariantAuditor::auditFull(const Core &core, uint64_t cycle)
{
    const auto cyc = static_cast<unsigned long long>(cycle);

    // --- [rob] slot integrity: every window slot holds its own seq ---
    uint32_t inflight_dests = 0;
    std::array<uint64_t, isa::kNumArchRegs> youngest;
    youngest.fill(kCommitted);
    uint32_t loads = 0, stores = 0, unissued = 0;

    for (uint64_t s = core.headSeq; s < core.tailSeq; ++s) {
        const DynInst &d = robAt(core, s);
        mg_check(d.seq == s,
                 "[rob] slot %llu holds seq %llu: age ordering broken "
                 "(cycle %llu)",
                 static_cast<unsigned long long>(s),
                 static_cast<unsigned long long>(d.seq), cyc);

        if (d.destArch >= 0) {
            ++inflight_dests;
            auto reg = static_cast<size_t>(d.destArch);
            mg_check(reg > 0 && reg < isa::kNumArchRegs,
                     "[rename] seq %llu renames illegal arch reg %d "
                     "(cycle %llu)",
                     static_cast<unsigned long long>(s), d.destArch,
                     cyc);
            if (youngest[reg] == kCommitted || s > youngest[reg])
                youngest[reg] = s;
        }
        if (d.isLoadOp)
            ++loads;
        if (d.isStoreOp)
            ++stores;
        mg_check(!(d.isLoadOp && d.isStoreOp),
                 "[rob] seq %llu is both a load and a store (cycle "
                 "%llu)",
                 static_cast<unsigned long long>(s), cyc);
        if (!d.issued)
            ++unissued;

        // --- [iq] a window entry is queued iff it has not issued ---
        mg_check(d.inIq == !d.issued,
                 "[iq] seq %llu: inIq=%d but issued=%d (cycle %llu)",
                 static_cast<unsigned long long>(s), d.inIq, d.issued,
                 cyc);

        // --- [issue-ready] no issue before actual operand readiness ---
        if (d.issued) {
            for (uint8_t i = 0; i < d.numSrcs; ++i) {
                uint64_t p = d.srcProducers[i];
                if (p == kCommitted)
                    continue;
                mg_check(p < d.seq,
                         "[issue-ready] seq %llu reads future producer "
                         "%llu (cycle %llu)",
                         static_cast<unsigned long long>(d.seq),
                         static_cast<unsigned long long>(p), cyc);
                if (!inFlight(core, p))
                    continue; // committed: architecturally ready
                const DynInst &prod = robAt(core, p);
                mg_check(prod.issued && prod.ready <= d.issueCycle,
                         "[issue-ready] seq %llu issued at cycle %llu "
                         "but producer %llu %s (ready at %llu) (cycle "
                         "%llu)",
                         static_cast<unsigned long long>(d.seq),
                         static_cast<unsigned long long>(d.issueCycle),
                         static_cast<unsigned long long>(p),
                         prod.issued ? "was not ready" : "had not issued",
                         static_cast<unsigned long long>(prod.ready),
                         cyc);
            }

            // --- [storesets] loads never outrun a predicted store ---
            uint64_t ws = d.waitForStore;
            if (d.isLoadOp && ws != kCommitted &&
                ws != uarch::StoreSets::kNone && ws < d.seq &&
                inFlight(core, ws) && robAt(core, ws).isStoreOp) {
                const DynInst &store = robAt(core, ws);
                mg_check(store.memExecDone <= d.issueCycle,
                         "[storesets] load seq %llu issued at cycle "
                         "%llu before predicted store %llu resolved "
                         "its address (cycle %llu) (cycle %llu)",
                         static_cast<unsigned long long>(d.seq),
                         static_cast<unsigned long long>(d.issueCycle),
                         static_cast<unsigned long long>(ws),
                         static_cast<unsigned long long>(
                             store.memExecDone),
                         cyc);
            }
        }

        // --- [mg-slots] handle slot amplification ---
        if (d.isHandle()) {
            const isa::MgTemplate &t = *d.ex.tmpl;
            mg_check(t.size() >= 2 && t.size() <= isa::kMaxMgSize,
                     "[mg-slots] handle seq %llu aggregates %u "
                     "constituents (legal: 2..%u) (cycle %llu)",
                     static_cast<unsigned long long>(s), t.size(),
                     isa::kMaxMgSize, cyc);
            mg_check(d.numSrcs <= isa::kMaxMgInputs,
                     "[mg-slots] handle seq %llu has %u external "
                     "inputs (max %u) (cycle %llu)",
                     static_cast<unsigned long long>(s), d.numSrcs,
                     isa::kMaxMgInputs, cyc);
            mg_check(d.ex.numConstituents == t.size(),
                     "[mg-slots] handle seq %llu records %u "
                     "constituent executions for a %u-constituent "
                     "template (cycle %llu)",
                     static_cast<unsigned long long>(s),
                     d.ex.numConstituents, t.size(), cyc);
            mg_check((d.isLoadOp || d.isStoreOp) == t.hasMem &&
                         !(d.isLoadOp && d.isStoreOp),
                     "[mg-slots] handle seq %llu memory slot usage "
                     "(load=%d store=%d) disagrees with template "
                     "hasMem=%d: must hold exactly one LQ/SQ slot per "
                     "memory constituent (cycle %llu)",
                     static_cast<unsigned long long>(s), d.isLoadOp,
                     d.isStoreOp, t.hasMem, cyc);
            mg_check(d.hasDest() == t.hasOutput,
                     "[mg-slots] handle seq %llu holds %s rename slot "
                     "but template hasOutput=%d (cycle %llu)",
                     static_cast<unsigned long long>(s),
                     d.hasDest() ? "a" : "no", t.hasOutput, cyc);
        }
    }

    // --- [free-list] conservation: free + in-flight dests == pool ---
    mg_check(core.freePhys + inflight_dests == renamePool(core),
             "[free-list] conservation broken: free=%u + in-flight "
             "dests=%u != pool=%u (cycle %llu)",
             core.freePhys, inflight_dests, renamePool(core), cyc);

    // --- [rename] map points at the youngest in-flight producer ---
    // With no in-flight producer the mapping may lag: flush rollback
    // restores prevProducer, which can be a seq that committed while
    // the squashed producer was in flight.  Commit only clears the
    // map when it still points at the committing seq, so a stale
    // *committed* seq is legal (dispatch treats it as ready); any
    // not-yet-dispatched or squashed seq is not.
    for (size_t reg = 0; reg < isa::kNumArchRegs; ++reg) {
        const uint64_t mapped = core.renameMap[reg];
        if (youngest[reg] == uarch::kCommitted &&
            (mapped == uarch::kCommitted || mapped < core.headSeq))
            continue;
        mg_check(mapped == youngest[reg],
                 "[rename] r%zu maps to %llu but the youngest in-flight "
                 "producer is %llu (cycle %llu)",
                 reg, static_cast<unsigned long long>(mapped),
                 static_cast<unsigned long long>(youngest[reg]), cyc);
    }

    // --- [iq] age order and membership ---
    mg_check(core.iq.size() == unissued,
             "[iq] holds %zu entries but the window has %u unissued "
             "instructions (cycle %llu)",
             core.iq.size(), unissued, cyc);
    for (size_t i = 0; i < core.iq.size(); ++i) {
        uint64_t s = core.iq[i];
        mg_check(inFlight(core, s),
                 "[iq] entry %zu (seq %llu) is not in flight (cycle "
                 "%llu)",
                 i, static_cast<unsigned long long>(s), cyc);
        mg_check(i == 0 || core.iq[i - 1] < s,
                 "[iq] age order broken at entry %zu: %llu after %llu "
                 "(cycle %llu)",
                 i, static_cast<unsigned long long>(s),
                 static_cast<unsigned long long>(core.iq[i - 1]), cyc);
        mg_check(!robAt(core, s).issued,
                 "[iq] seq %llu already issued but still queued (cycle "
                 "%llu)",
                 static_cast<unsigned long long>(s), cyc);
    }

    // --- [lq]/[sq] age order and membership <-> memory kind ---
    auto audit_mem_queue = [&](const std::deque<uint64_t> &q,
                               bool is_load, uint32_t expected,
                               const char *tag) {
        mg_check(q.size() == expected,
                 "[%s] holds %zu entries but the window has %u "
                 "in-flight %s ops (cycle %llu)",
                 tag, q.size(), expected, is_load ? "load" : "store",
                 cyc);
        for (size_t i = 0; i < q.size(); ++i) {
            uint64_t s = q[i];
            mg_check(inFlight(core, s),
                     "[%s] entry %zu (seq %llu) is not in flight "
                     "(cycle %llu)",
                     tag, i, static_cast<unsigned long long>(s), cyc);
            const DynInst &d = robAt(core, s);
            mg_check(is_load ? d.isLoadOp : d.isStoreOp,
                     "[%s] seq %llu is not a %s op (cycle %llu)", tag,
                     static_cast<unsigned long long>(s),
                     is_load ? "load" : "store", cyc);
            mg_check(i == 0 || q[i - 1] < s,
                     "[%s] age order broken at entry %zu: %llu after "
                     "%llu (cycle %llu)",
                     tag, i, static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(q[i - 1]), cyc);
        }
    };
    audit_mem_queue(core.lq, true, loads, "lq");
    audit_mem_queue(core.sq, false, stores, "sq");

    // --- [fetchq] fetched-but-unrenamed seqs are contiguous ---
    mg_check(core.fetchQueue.size() == core.nextSeq - core.tailSeq,
             "[fetchq] %zu queued instructions but seq range "
             "[tail=%llu, next=%llu) (cycle %llu)",
             core.fetchQueue.size(),
             static_cast<unsigned long long>(core.tailSeq),
             static_cast<unsigned long long>(core.nextSeq), cyc);
    for (size_t i = 0; i < core.fetchQueue.size(); ++i) {
        mg_check(core.fetchQueue[i].seq == core.tailSeq + i,
                 "[fetchq] entry %zu holds seq %llu, expected %llu "
                 "(cycle %llu)",
                 i,
                 static_cast<unsigned long long>(core.fetchQueue[i].seq),
                 static_cast<unsigned long long>(core.tailSeq + i), cyc);
    }

    // --- [sdwatch] consumer watch only tracks in-flight producers ---
    for (const auto &[producer, handle_pc] : core.sdWatch) {
        mg_check(inFlight(core, producer),
                 "[sdwatch] watched producer %llu (handle pc %u) is "
                 "not in flight (cycle %llu)",
                 static_cast<unsigned long long>(producer), handle_pc,
                 cyc);
    }
}

} // namespace mg::check
