/**
 * @file
 * Mini-graph structural linter.
 *
 * Re-checks selected templates, chosen candidate sets and rewritten
 * binaries against the paper's RISC-singleton interface (§2: at most
 * 4 constituents, 3 external register inputs, 1 register output,
 * 1 memory operation, 1 terminal control transfer) and against
 * internal-dataflow legality (acyclic constituent chains feeding only
 * from value-producing predecessors, consistent summary flags,
 * consistent internal latency).
 *
 * The linter deliberately re-derives everything from the ISA layer —
 * it shares no code with minigraph/candidate.cc, selection.cc or
 * rewriter.cc — so a bug in the enumeration/selection/rewriting
 * pipeline shows up as a finding here instead of being inherited.
 *
 * Violations are reported as findings (data, not exceptions):
 * the linter is a diagnostic tool and must be able to describe *all*
 * problems in an artefact, not just the first one.
 */

#ifndef MG_CHECK_MG_LINT_H
#define MG_CHECK_MG_LINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.h"
#include "isa/minigraph_types.h"
#include "minigraph/candidate.h"

namespace mg::check
{

/** Which interface / legality rule a finding violates. */
enum class LintRule : uint8_t
{
    Size,     ///< constituent count outside [2, kMaxMgSize]
    Inputs,   ///< >3 external inputs, bad slot refs, or non-canonical order
    Output,   ///< >1 register output or inconsistent output marking
    Mem,      ///< >1 memory operation or inconsistent hasMem flag
    Control,  ///< control transfer not last / illegal kind / bad flags
    Dataflow, ///< forward/cyclic internal edge or ref to a non-value op
    Opcode,   ///< constituent opcode illegal inside a mini-graph
    Latency,  ///< MgTemplate::totalLatency() disagrees with re-derived sum
    Overlap,  ///< chosen candidates / instances not pairwise disjoint
    SiteMatch,///< template disagrees with the program text at its site
    Handle,   ///< MGHANDLE <-> instance table inconsistency
    Elided,   ///< elided interior slots malformed or orphaned
    Outline,  ///< outlined body missing, wrong, or not jump-terminated
    Target,   ///< control transfer targets the interior of a mini-graph
    DeadOutput,  ///< declared register output dead on every CFG path
    Unreachable, ///< constituents unreachable from the program entry
    SerialClass, ///< structural class disagrees with template dataflow
};

/** Registry name of a rule (stable, used in reports and tests). */
const char *lintRuleName(LintRule rule);

/** One violation. */
struct LintFinding
{
    LintRule rule;
    std::string where;   ///< e.g. "template 3", "handle pc 17"
    std::string message;
};

/** Result of one linter pass (or several merged passes). */
struct LintReport
{
    std::vector<LintFinding> findings;
    size_t templatesChecked = 0;
    size_t instancesChecked = 0;

    bool clean() const { return findings.empty(); }

    /** Fold another report's findings and counters into this one. */
    void merge(LintReport other);

    /** Human-readable one-line-per-finding rendering. */
    std::string render() const;
};

/**
 * Check one template against the interface constraints and internal
 * dataflow legality.
 *
 * @param tmpl   the template
 * @param where  report location prefix (e.g. "template 3")
 */
LintReport lintTemplate(const isa::MgTemplate &tmpl,
                        const std::string &where = "template");

/** Check every template of a selection / MGT image. */
LintReport lintTemplates(const std::vector<isa::MgTemplate> &templates);

/**
 * Check a chosen candidate set against the original program:
 * every template legal, candidates pairwise disjoint, each template
 * re-derivable from the instructions at its site, and — via an
 * independently built whole-program analysis (analysis/analyzer.h) —
 * every candidate's block reachable from the entry, its declared
 * register output actually live on some path after the aggregate, and
 * its structural serialization class consistent with the template's
 * own dataflow facts.
 */
LintReport lintChosen(const assembler::Program &orig,
                      const std::vector<minigraph::Candidate> &chosen);

/**
 * Check a rewritten binary: template table legality, MGHANDLE /
 * instance-table cross-consistency, elided interior shape, outlined
 * bodies (present, faithful, jump-terminated), and the absence of
 * control transfers into mini-graph interiors.
 *
 * @param rewritten  the rewritten program image
 * @param info       its mini-graph side table
 * @param orig       the original program, if available (enables
 *                   constituent-faithfulness checks)
 */
LintReport lintBinary(const assembler::Program &rewritten,
                      const isa::MgBinaryInfo &info,
                      const assembler::Program *orig = nullptr);

/**
 * Full pipeline lint: chosen set against the original program plus
 * the rewritten binary produced from it.
 */
LintReport lintRewrite(const assembler::Program &orig,
                       const std::vector<minigraph::Candidate> &chosen,
                       const assembler::Program &rewritten,
                       const isa::MgBinaryInfo &info);

} // namespace mg::check

#endif // MG_CHECK_MG_LINT_H
