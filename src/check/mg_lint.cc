#include "check/mg_lint.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "analysis/analyzer.h"
#include "common/logging.h"

namespace mg::check
{

using assembler::Program;
using isa::Addr;
using isa::Instruction;
using isa::MgConstituent;
using isa::MgInstance;
using isa::MgSrcKind;
using isa::MgTemplate;
using isa::Opcode;

const char *
lintRuleName(LintRule rule)
{
    switch (rule) {
      case LintRule::Size: return "size";
      case LintRule::Inputs: return "inputs";
      case LintRule::Output: return "output";
      case LintRule::Mem: return "mem";
      case LintRule::Control: return "control";
      case LintRule::Dataflow: return "dataflow";
      case LintRule::Opcode: return "opcode";
      case LintRule::Latency: return "latency";
      case LintRule::Overlap: return "overlap";
      case LintRule::SiteMatch: return "site-match";
      case LintRule::Handle: return "handle";
      case LintRule::Elided: return "elided";
      case LintRule::Outline: return "outline";
      case LintRule::Target: return "target";
      case LintRule::DeadOutput: return "dead-output";
      case LintRule::Unreachable: return "unreachable";
      case LintRule::SerialClass: return "serial-class";
    }
    return "?";
}

void
LintReport::merge(LintReport other)
{
    findings.insert(findings.end(),
                    std::make_move_iterator(other.findings.begin()),
                    std::make_move_iterator(other.findings.end()));
    templatesChecked += other.templatesChecked;
    instancesChecked += other.instancesChecked;
}

std::string
LintReport::render() const
{
    std::string out;
    for (const auto &f : findings) {
        out += strprintf("[%s] %s: %s\n", lintRuleName(f.rule),
                         f.where.c_str(), f.message.c_str());
    }
    return out;
}

namespace
{

/** Append a finding. */
void
report(LintReport &rep, LintRule rule, const std::string &where,
       std::string message)
{
    rep.findings.push_back({rule, where, std::move(message)});
}

/**
 * May this opcode appear as a mini-graph constituent?  Re-derived
 * from the ISA tables: constituents execute on simple ALU pipelines
 * (no multi-cycle complex units), at most one memory reference, and
 * the only legal control transfers are conditional branches and
 * direct jumps (calls and indirect jumps have side effects that break
 * the singleton interface).
 */
bool
constituentOpcodeLegal(Opcode op)
{
    switch (isa::opInfo(op).execClass) {
      case isa::ExecClass::IntAlu:
      case isa::ExecClass::MemRead:
      case isa::ExecClass::MemWrite:
        return true;
      case isa::ExecClass::Control:
        return isa::isCondBranch(op) || op == Opcode::J;
      case isa::ExecClass::IntComplex:
      case isa::ExecClass::Nop:
      case isa::ExecClass::MgHandle:
        return false;
    }
    return false;
}

/** Does this constituent produce a value an internal edge can read? */
bool
producesValue(Opcode op)
{
    return isa::opInfo(op).writesRd;
}

/** Full field-wise instruction comparison (Instruction has no ==). */
bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 &&
           a.rs2 == b.rs2 && a.rs3 == b.rs3 && a.numSrcs == b.numSrcs &&
           a.hasDest == b.hasDest && a.imm == b.imm &&
           a.mgIndex == b.mgIndex;
}

/**
 * Template independently re-derived from the instructions at a
 * candidate site (the linter's own implementation of the canonical
 * first-use external numbering — shares nothing with candidate.cc).
 */
struct DerivedSite
{
    std::vector<MgConstituent> ops;
    std::vector<uint8_t> externalRegs; ///< slot -> architectural reg
    bool failed = false;               ///< could not derive (bad site)
    std::string error;
};

DerivedSite
deriveSite(const Program &prog, Addr first_pc, unsigned len)
{
    DerivedSite out;
    if (static_cast<size_t>(first_pc) + len > prog.code.size()) {
        out.failed = true;
        out.error = strprintf("site [%u,+%u) outside program of %zu",
                              first_pc, len, prog.code.size());
        return out;
    }

    std::array<int, isa::kNumArchRegs> def_of;
    def_of.fill(-1);

    auto bind = [&](uint8_t reg, MgSrcKind &kind, uint8_t &idx) {
        if (reg == isa::kZeroReg) {
            kind = MgSrcKind::None;
            idx = 0;
            return;
        }
        if (def_of[reg] >= 0) {
            kind = MgSrcKind::Internal;
            idx = static_cast<uint8_t>(def_of[reg]);
            return;
        }
        for (size_t s = 0; s < out.externalRegs.size(); ++s) {
            if (out.externalRegs[s] == reg) {
                kind = MgSrcKind::External;
                idx = static_cast<uint8_t>(s);
                return;
            }
        }
        kind = MgSrcKind::External;
        idx = static_cast<uint8_t>(out.externalRegs.size());
        out.externalRegs.push_back(reg);
    };

    for (unsigned k = 0; k < len; ++k) {
        const Instruction &inst = prog.code[first_pc + k];
        const isa::OpInfo &op_info = isa::opInfo(inst.op);
        MgConstituent c;
        c.op = inst.op;
        c.imm = inst.isControl()
                    ? inst.imm - static_cast<int64_t>(first_pc)
                    : inst.imm;
        if (op_info.readsRs1)
            bind(inst.rs1, c.src1Kind, c.src1);
        if (op_info.readsRs2)
            bind(inst.rs2, c.src2Kind, c.src2);
        int dest = inst.destReg();
        if (dest >= 0)
            def_of[static_cast<size_t>(dest)] = static_cast<int>(k);
        out.ops.push_back(c);
    }
    return out;
}

/** All PCs that direct control transfers in `prog` can reach. */
std::vector<Addr>
directControlTargets(const Program &prog)
{
    std::vector<Addr> targets;
    for (const Instruction &inst : prog.code) {
        if (inst.isDirectControl())
            targets.push_back(static_cast<Addr>(inst.imm));
    }
    return targets;
}

} // namespace

LintReport
lintTemplate(const MgTemplate &t, const std::string &where)
{
    LintReport rep;
    rep.templatesChecked = 1;

    // --- Size (≤4 constituents, ≥2 or it is not an aggregate) ---
    if (t.size() < 2 || t.size() > isa::kMaxMgSize) {
        report(rep, LintRule::Size, where,
               strprintf("%u constituents (legal: 2..%u)", t.size(),
                         isa::kMaxMgSize));
        return rep; // most other rules assume a sane size
    }

    // --- External inputs (≤3, valid slots, canonical first-use order) ---
    if (t.numInputs > isa::kMaxMgInputs) {
        report(rep, LintRule::Inputs, where,
               strprintf("%u external inputs (max %u)", t.numInputs,
                         isa::kMaxMgInputs));
    }
    unsigned next_first_use = 0;
    unsigned mem_ops = 0;
    unsigned outputs = 0;
    std::vector<uint8_t> seen_slots;
    for (unsigned k = 0; k < t.size(); ++k) {
        const MgConstituent &c = t.ops[k];
        const std::string at = strprintf("%s op %u", where.c_str(), k);

        if (!constituentOpcodeLegal(c.op)) {
            report(rep, LintRule::Opcode, at,
                   strprintf("opcode '%s' illegal inside a mini-graph",
                             std::string(isa::mnemonic(c.op)).c_str()));
        }

        auto check_src = [&](MgSrcKind kind, uint8_t idx, const char *nm) {
            switch (kind) {
              case MgSrcKind::None:
                break;
              case MgSrcKind::External:
                if (idx >= t.numInputs) {
                    report(rep, LintRule::Inputs, at,
                           strprintf("%s reads external slot %u but the "
                                     "template declares %u inputs",
                                     nm, idx, t.numInputs));
                } else if (std::find(seen_slots.begin(), seen_slots.end(),
                                     idx) == seen_slots.end()) {
                    // First use: slots must be numbered in first-use
                    // order or template sharing breaks.
                    if (idx != next_first_use) {
                        report(rep, LintRule::Inputs, at,
                               strprintf("%s first-uses external slot %u "
                                         "but slot %u is next in "
                                         "canonical order",
                                         nm, idx, next_first_use));
                    }
                    seen_slots.push_back(idx);
                    ++next_first_use;
                }
                break;
              case MgSrcKind::Internal:
                if (idx >= k) {
                    report(rep, LintRule::Dataflow, at,
                           strprintf("%s reads constituent %u: internal "
                                     "edges must point backwards "
                                     "(acyclic chain)", nm, idx));
                } else if (!producesValue(t.ops[idx].op)) {
                    report(rep, LintRule::Dataflow, at,
                           strprintf("%s reads constituent %u ('%s') "
                                     "which produces no value", nm, idx,
                                     std::string(
                                         isa::mnemonic(t.ops[idx].op))
                                         .c_str()));
                }
                break;
            }
        };
        check_src(c.src1Kind, c.src1, "src1");
        check_src(c.src2Kind, c.src2, "src2");

        // --- Memory (≤1 reference) ---
        if (isa::isMem(c.op))
            ++mem_ops;

        // --- Control (terminal only) ---
        if (isa::isControl(c.op) && k + 1 != t.size()) {
            report(rep, LintRule::Control, at,
                   "control transfer before the last constituent");
        }

        // --- Output (≤1, and from a value-producing op) ---
        if (c.producesOutput) {
            ++outputs;
            if (!producesValue(c.op)) {
                report(rep, LintRule::Output, at,
                       strprintf("'%s' marked as output producer but "
                                 "writes no register",
                                 std::string(isa::mnemonic(c.op))
                                     .c_str()));
            }
            if (static_cast<int>(k) != t.outputIdx) {
                report(rep, LintRule::Output, at,
                       strprintf("marked as output producer but "
                                 "outputIdx is %d", t.outputIdx));
            }
        }
    }

    if (mem_ops > 1) {
        report(rep, LintRule::Mem, where,
               strprintf("%u memory operations (max 1)", mem_ops));
    }
    if (t.hasMem != (mem_ops > 0)) {
        report(rep, LintRule::Mem, where,
               strprintf("hasMem=%d but template contains %u memory ops",
                         t.hasMem, mem_ops));
    }

    if (outputs > 1) {
        report(rep, LintRule::Output, where,
               strprintf("%u register outputs (max 1)", outputs));
    }
    if (t.hasOutput != (outputs > 0) ||
        (t.outputIdx >= 0) != (outputs > 0) ||
        t.outputIdx >= static_cast<int>(t.size())) {
        report(rep, LintRule::Output, where,
               strprintf("inconsistent output marking: hasOutput=%d "
                         "outputIdx=%d with %u marked producers",
                         t.hasOutput, t.outputIdx, outputs));
    }

    const MgConstituent &last = t.ops[t.size() - 1];
    bool last_control = isa::isControl(last.op);
    if (t.hasControl != last_control) {
        report(rep, LintRule::Control, where,
               strprintf("hasControl=%d but last constituent %s a "
                         "control transfer", t.hasControl,
                         last_control ? "is" : "is not"));
    }
    if (t.condControl != (last_control && isa::isCondBranch(last.op))) {
        report(rep, LintRule::Control, where,
               strprintf("condControl=%d inconsistent with last "
                         "constituent '%s'", t.condControl,
                         std::string(isa::mnemonic(last.op)).c_str()));
    }

    // --- Internal latency (re-derived sum vs the template's own) ---
    unsigned lat = 0;
    for (const MgConstituent &c : t.ops)
        lat += isa::opInfo(c.op).latency;
    if (lat != t.totalLatency()) {
        report(rep, LintRule::Latency, where,
               strprintf("totalLatency() says %u, constituent sum is %u",
                         t.totalLatency(), lat));
    }

    return rep;
}

LintReport
lintTemplates(const std::vector<MgTemplate> &templates)
{
    LintReport rep;
    for (size_t i = 0; i < templates.size(); ++i) {
        rep.merge(lintTemplate(templates[i],
                               strprintf("template %zu", i)));
    }
    return rep;
}

LintReport
lintChosen(const Program &orig,
           const std::vector<minigraph::Candidate> &chosen)
{
    LintReport rep;

    // --- Pairwise disjointness ---
    std::vector<const minigraph::Candidate *> by_pc;
    by_pc.reserve(chosen.size());
    for (const auto &c : chosen)
        by_pc.push_back(&c);
    std::sort(by_pc.begin(), by_pc.end(),
              [](const auto *a, const auto *b) {
                  return a->firstPc < b->firstPc;
              });
    for (size_t i = 1; i < by_pc.size(); ++i) {
        if (by_pc[i - 1]->pcAfter() > by_pc[i]->firstPc) {
            report(rep, LintRule::Overlap,
                   strprintf("candidate pc %u", by_pc[i]->firstPc),
                   strprintf("overlaps candidate at pc %u",
                             by_pc[i - 1]->firstPc));
        }
    }

    std::vector<Addr> targets = directControlTargets(orig);

    // Whole-program analysis, built independently of the selection
    // pipeline's own CFG/liveness (same analyses, fresh instances):
    // reachability, liveness and dataflow facts to re-check the
    // enumeration's structural claims against.
    std::optional<analysis::ProgramAnalysis> pa;
    if (!chosen.empty())
        pa.emplace(orig);

    for (const auto &c : chosen) {
        const std::string where = strprintf("candidate pc %u", c.firstPc);
        rep.merge(lintTemplate(c.tmpl, where));

        if (!pa->reachableAt(c.firstPc)) {
            report(rep, LintRule::Unreachable, where,
                   "constituents are unreachable from the program "
                   "entry");
        }
        if (c.outputReg >= 0 &&
            !assembler::regIn(
                pa->liveness().liveAfter(c.firstPc + c.len - 1),
                static_cast<unsigned>(c.outputReg))) {
            report(rep, LintRule::DeadOutput, where,
                   strprintf("declared output r%d is dead on every "
                             "path after the aggregate", c.outputReg));
        }
        bool serializing = c.tmpl.hasSerializingInput();
        if ((c.serialClass ==
             minigraph::SerialClass::NonSerializing) == serializing) {
            report(rep, LintRule::SerialClass, where,
                   strprintf("class %s but template %s a serializing "
                             "input",
                             c.serialClass ==
                                     minigraph::SerialClass::NonSerializing
                                 ? "non-serializing"
                                 : "serializing",
                             serializing ? "has" : "does not have"));
        }

        if (c.len != c.tmpl.size()) {
            report(rep, LintRule::SiteMatch, where,
                   strprintf("len=%u but template has %u constituents",
                             c.len, c.tmpl.size()));
            continue;
        }
        if ((c.outputReg >= 0) != c.tmpl.hasOutput) {
            report(rep, LintRule::SiteMatch, where,
                   strprintf("outputReg=%d but template hasOutput=%d",
                             c.outputReg, c.tmpl.hasOutput));
        }

        // --- The template must re-derive from the program text ---
        DerivedSite site = deriveSite(orig, c.firstPc, c.len);
        if (site.failed) {
            report(rep, LintRule::SiteMatch, where, site.error);
            continue;
        }
        if (site.externalRegs.size() != c.tmpl.numInputs) {
            report(rep, LintRule::SiteMatch, where,
                   strprintf("site needs %zu external inputs, template "
                             "declares %u", site.externalRegs.size(),
                             c.tmpl.numInputs));
        } else {
            for (size_t s = 0; s < site.externalRegs.size(); ++s) {
                if (site.externalRegs[s] != c.inputRegs[s]) {
                    report(rep, LintRule::SiteMatch, where,
                           strprintf("external slot %zu is r%u at the "
                                     "site but r%u in the candidate", s,
                                     site.externalRegs[s],
                                     c.inputRegs[s]));
                }
            }
        }
        for (unsigned k = 0; k < c.len; ++k) {
            const MgConstituent &want = site.ops[k];
            const MgConstituent &got = c.tmpl.ops[k];
            if (want.op != got.op || want.imm != got.imm ||
                want.src1Kind != got.src1Kind ||
                want.src2Kind != got.src2Kind ||
                (want.src1Kind != MgSrcKind::None &&
                 want.src1 != got.src1) ||
                (want.src2Kind != MgSrcKind::None &&
                 want.src2 != got.src2)) {
                report(rep, LintRule::SiteMatch,
                       strprintf("%s op %u", where.c_str(), k),
                       strprintf("template disagrees with '%s' at pc %u",
                                 isa::disassemble(
                                     orig.code[c.firstPc + k])
                                     .c_str(),
                                 c.firstPc + k));
            }
            if (got.producesOutput &&
                orig.code[c.firstPc + k].destReg() != c.outputReg) {
                report(rep, LintRule::SiteMatch,
                       strprintf("%s op %u", where.c_str(), k),
                       strprintf("output producer writes r%d at the "
                                 "site, candidate says r%d",
                                 orig.code[c.firstPc + k].destReg(),
                                 c.outputReg));
            }
        }

        // --- No control transfer may target the interior ---
        for (Addr t : targets) {
            if (t > c.firstPc && t < c.pcAfter()) {
                report(rep, LintRule::Target, where,
                       strprintf("pc %u inside the candidate is a "
                                 "control-transfer target (spans a "
                                 "basic-block boundary)", t));
            }
        }
    }
    return rep;
}

LintReport
lintBinary(const Program &rewritten, const isa::MgBinaryInfo &info,
           const Program *orig)
{
    LintReport rep;
    rep.merge(lintTemplates(info.templates));
    const auto &code = rewritten.code;

    // --- Every MGHANDLE has an instance and vice versa ---
    for (Addr pc = 0; pc < code.size(); ++pc) {
        if (code[pc].isHandle() && !info.instanceAt(pc)) {
            report(rep, LintRule::Handle, strprintf("handle pc %u", pc),
                   "MGHANDLE with no instance-table entry");
        }
    }

    // Interior (elided) slots claimed by instances.
    std::unordered_set<Addr> interior;

    std::vector<const MgInstance *> by_pc;
    for (const auto &[pc, inst] : info.instances) {
        by_pc.push_back(&inst);
        if (pc != inst.handlePc) {
            report(rep, LintRule::Handle, strprintf("handle pc %u", pc),
                   strprintf("instance table key %u != handlePc %u", pc,
                             inst.handlePc));
        }
    }
    std::sort(by_pc.begin(), by_pc.end(),
              [](const auto *a, const auto *b) {
                  return a->handlePc < b->handlePc;
              });

    const MgInstance *prev = nullptr;
    for (const MgInstance *ip : by_pc) {
        const MgInstance &mi = *ip;
        ++rep.instancesChecked;
        const std::string where =
            strprintf("handle pc %u", mi.handlePc);

        if (mi.templateIdx >= info.templates.size()) {
            report(rep, LintRule::Handle, where,
                   strprintf("templateIdx %u out of range (%zu "
                             "templates)", mi.templateIdx,
                             info.templates.size()));
            continue;
        }
        const MgTemplate &t = info.templates[mi.templateIdx];
        const unsigned n = t.size();

        if (mi.handlePc >= code.size() ||
            !code[mi.handlePc].isHandle()) {
            report(rep, LintRule::Handle, where,
                   "instance does not point at an MGHANDLE");
            continue;
        }
        const Instruction &h = code[mi.handlePc];
        if (h.mgIndex != mi.templateIdx) {
            report(rep, LintRule::Handle, where,
                   strprintf("handle names template %u, instance says "
                             "%u", h.mgIndex, mi.templateIdx));
        }
        if (h.numSrcs != t.numInputs) {
            report(rep, LintRule::Handle, where,
                   strprintf("handle has %u sources, template needs %u",
                             h.numSrcs, t.numInputs));
        }
        if (h.hasDest != t.hasOutput ||
            (h.hasDest && h.rd == isa::kZeroReg)) {
            report(rep, LintRule::Handle, where,
                   strprintf("handle hasDest=%d rd=r%u vs template "
                             "hasOutput=%d", h.hasDest, h.rd,
                             t.hasOutput));
        }

        // --- Interior shape: n-1 ELIDED holes, correct fall-through ---
        if (mi.pcAfter != mi.handlePc + n) {
            report(rep, LintRule::Elided, where,
                   strprintf("pcAfter=%u, expected handlePc+%u=%u",
                             mi.pcAfter, n, mi.handlePc + n));
        }
        for (Addr pc = mi.handlePc + 1;
             pc < mi.handlePc + n && pc < code.size(); ++pc) {
            interior.insert(pc);
            if (!code[pc].isElided()) {
                report(rep, LintRule::Elided, where,
                       strprintf("interior pc %u holds '%s', not "
                                 "ELIDED", pc,
                                 isa::disassemble(code[pc]).c_str()));
            }
        }
        if (prev && prev->handlePc +
                        info.templates[prev->templateIdx].size() >
                    mi.handlePc) {
            report(rep, LintRule::Overlap, where,
                   strprintf("overlaps instance at pc %u",
                             prev->handlePc));
        }
        prev = ip;

        if (mi.constituentPcs.size() != n) {
            report(rep, LintRule::Handle, where,
                   strprintf("%zu constituent PCs recorded for a "
                             "%u-constituent template",
                             mi.constituentPcs.size(), n));
        }

        // --- Outlined body: faithful copy + jump back ---
        if (static_cast<size_t>(mi.outlinedPc) + n + 1 > code.size()) {
            report(rep, LintRule::Outline, where,
                   strprintf("outlined body at pc %u overruns the "
                             "image", mi.outlinedPc));
            continue;
        }
        for (unsigned k = 0; k < n; ++k) {
            Addr bpc = mi.outlinedPc + k;
            const Instruction &body = code[bpc];
            if (!info.outlinedBodyPcs.count(bpc)) {
                report(rep, LintRule::Outline, where,
                       strprintf("body pc %u not in outlinedBodyPcs",
                                 bpc));
            }
            bool faithful;
            if (orig && mi.constituentPcs.size() == n &&
                mi.constituentPcs[k] < orig->code.size()) {
                faithful = sameInstruction(
                    body, orig->code[mi.constituentPcs[k]]);
            } else {
                faithful = body.op == t.ops[k].op;
            }
            if (!faithful) {
                report(rep, LintRule::Outline, where,
                       strprintf("body pc %u ('%s') is not a copy of "
                                 "constituent %u", bpc,
                                 isa::disassemble(body).c_str(), k));
            }
        }
        Addr jump_pc = mi.outlinedPc + n;
        const Instruction &jump = code[jump_pc];
        bool body_ends_in_control =
            n > 0 && isa::isControl(t.ops[n - 1].op);
        if (jump.op != Opcode::J ||
            static_cast<Addr>(jump.imm) != mi.pcAfter) {
            report(rep, LintRule::Outline, where,
                   strprintf("outlined body not terminated by "
                             "'j %u' at pc %u (found '%s')%s",
                             mi.pcAfter, jump_pc,
                             isa::disassemble(jump).c_str(),
                             body_ends_in_control
                                 ? " [body ends in control]"
                                 : ""));
        } else if (!info.outliningJumpPcs.count(jump_pc)) {
            report(rep, LintRule::Outline, where,
                   strprintf("jump-back pc %u not in outliningJumpPcs",
                             jump_pc));
        }
    }

    // --- Orphaned ELIDED slots ---
    for (Addr pc = 0; pc < code.size(); ++pc) {
        if (code[pc].isElided() && !interior.count(pc)) {
            report(rep, LintRule::Elided, strprintf("pc %u", pc),
                   "ELIDED slot not inside any mini-graph instance");
        }
    }

    // --- No control transfer into an elided interior ---
    for (Addr pc = 0; pc < code.size(); ++pc) {
        const Instruction &inst = code[pc];
        Addr target = isa::kNoAddr;
        if (inst.isDirectControl()) {
            target = static_cast<Addr>(inst.imm);
        } else if (inst.isHandle()) {
            const MgInstance *mi = info.instanceAt(pc);
            if (mi && mi->templateIdx < info.templates.size()) {
                const MgTemplate &t = info.templates[mi->templateIdx];
                if (t.hasControl) {
                    target = static_cast<Addr>(
                        static_cast<int64_t>(pc) +
                        t.ops[t.size() - 1].imm);
                }
            }
        }
        if (target == isa::kNoAddr)
            continue;
        if (target >= code.size()) {
            report(rep, LintRule::Target, strprintf("pc %u", pc),
                   strprintf("control target %u outside the image",
                             target));
        } else if (code[target].isElided()) {
            report(rep, LintRule::Target, strprintf("pc %u", pc),
                   strprintf("control target %u is an elided "
                             "mini-graph interior", target));
        }
    }

    return rep;
}

LintReport
lintRewrite(const Program &orig,
            const std::vector<minigraph::Candidate> &chosen,
            const Program &rewritten, const isa::MgBinaryInfo &info)
{
    LintReport rep = lintChosen(orig, chosen);
    LintReport bin = lintBinary(rewritten, info, &orig);
    // Chosen-set templates and binary templates largely coincide;
    // keep both counters (they audit different artefacts).
    rep.merge(std::move(bin));
    return rep;
}

} // namespace mg::check
