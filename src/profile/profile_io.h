/**
 * @file
 * Text serialization of slack profiles.
 *
 * The paper's workflow separates the profiling tool from the selector
 * ("a software tool identifies instruction groups ... and encodes them
 * into the executable"); persisting profiles lets the two run in
 * different processes, and makes profiles diffable artifacts.
 *
 * Format: one header line, then one line per static instruction:
 *
 *   mg-slack-profile v1
 *   <pc> <count> <issueRel> <readyRel> <slack> <storeSlack>
 *        <branchSlack> <srcObs0> <srcReady0> <srcObs1> <srcReady1>
 */

#ifndef MG_PROFILE_PROFILE_IO_H
#define MG_PROFILE_PROFILE_IO_H

#include <iosfwd>
#include <string>

#include "profile/slack_profile.h"

namespace mg::profile
{

/** Serialize a profile to a stream. */
void saveProfile(const SlackProfileData &data, std::ostream &out);

/** Serialize a profile to a string. */
std::string saveProfileToString(const SlackProfileData &data);

/**
 * Parse a profile.  Raises mg_fatal on malformed input.
 */
SlackProfileData loadProfile(std::istream &in);

/** Parse a profile from a string. */
SlackProfileData loadProfileFromString(const std::string &text);

} // namespace mg::profile

#endif // MG_PROFILE_PROFILE_IO_H
