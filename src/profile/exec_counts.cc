#include "profile/exec_counts.h"

#include "common/logging.h"
#include "uarch/functional.h"

namespace mg::profile
{

std::vector<uint64_t>
countExecutions(const assembler::Program &prog, uint64_t max_steps)
{
    std::vector<uint64_t> counts(prog.code.size(), 0);
    uarch::FunctionalCore core(prog);
    uint64_t steps = 0;
    while (!core.halted()) {
        mg_assert(steps++ < max_steps, "countExecutions: '%s' exceeded "
                  "step limit", prog.name.c_str());
        uarch::ExecStep s = core.step();
        mg_assert(s.pc < counts.size(), "pc out of range");
        ++counts[s.pc];
    }
    return counts;
}

} // namespace mg::profile
