/**
 * @file
 * Per-PC dynamic execution counts from a functional run.
 *
 * Selection needs per-instance execution frequencies ("f" in the
 * coverage score).  A plain functional pass is enough: frequency is a
 * property of the path, not of timing.
 */

#ifndef MG_PROFILE_EXEC_COUNTS_H
#define MG_PROFILE_EXEC_COUNTS_H

#include <cstdint>
#include <vector>

#include "assembler/program.h"

namespace mg::profile
{

/**
 * Run the program functionally and count executions per PC.
 *
 * @param prog      an original (non-rewritten) program
 * @param max_steps safety limit
 * @retval counts[pc] = dynamic executions of that instruction
 */
std::vector<uint64_t> countExecutions(const assembler::Program &prog,
                                      uint64_t max_steps = 1ull << 32);

} // namespace mg::profile

#endif // MG_PROFILE_EXEC_COUNTS_H
