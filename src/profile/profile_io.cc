#include "profile/profile_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace mg::profile
{

namespace
{

constexpr const char *kMagic = "mg-slack-profile v1";

} // namespace

void
saveProfile(const SlackProfileData &data, std::ostream &out)
{
    out << kMagic << "\n";
    // Deterministic order for diffability.
    std::vector<isa::Addr> pcs;
    pcs.reserve(data.entries.size());
    for (const auto &[pc, e] : data.entries)
        pcs.push_back(pc);
    std::sort(pcs.begin(), pcs.end());

    out.precision(17);
    for (isa::Addr pc : pcs) {
        const ProfileEntry &e = data.entries.at(pc);
        out << pc << ' ' << e.count << ' ' << e.issueRel << ' '
            << e.readyRel << ' ' << e.slack << ' ' << e.storeSlack << ' '
            << e.branchSlack;
        for (int s = 0; s < 2; ++s) {
            out << ' ' << (e.srcObserved[s] ? 1 : 0) << ' '
                << e.srcReadyRel[s];
        }
        out << '\n';
    }
}

std::string
saveProfileToString(const SlackProfileData &data)
{
    std::ostringstream ss;
    saveProfile(data, ss);
    return ss.str();
}

SlackProfileData
loadProfile(std::istream &in)
{
    std::string header;
    if (!std::getline(in, header) || header != kMagic)
        mg_fatal("not a slack profile (bad header '%s')", header.c_str());

    SlackProfileData data;
    std::string line;
    size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream ss(line);
        isa::Addr pc;
        ProfileEntry e;
        int obs0, obs1;
        if (!(ss >> pc >> e.count >> e.issueRel >> e.readyRel >>
              e.slack >> e.storeSlack >> e.branchSlack >> obs0 >>
              e.srcReadyRel[0] >> obs1 >> e.srcReadyRel[1])) {
            mg_fatal("malformed profile line %zu: '%s'", line_no,
                     line.c_str());
        }
        e.srcObserved[0] = obs0 != 0;
        e.srcObserved[1] = obs1 != 0;
        data.entries.emplace(pc, e);
    }
    return data;
}

SlackProfileData
loadProfileFromString(const std::string &text)
{
    std::istringstream ss(text);
    return loadProfile(ss);
}

} // namespace mg::profile
