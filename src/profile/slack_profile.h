/**
 * @file
 * Local slack profiles (§4.3).
 *
 * A SlackProfiler attaches to a singleton (non-mini-graph) timing run
 * and aggregates, per static instruction:
 *
 *  - mean issue time relative to the issue time of the first
 *    instruction of its basic block (the paper's "convenient fixed
 *    reference point"),
 *  - mean ready time of each source operand (same reference frame),
 *  - mean local slack of its register output: the cycles it could be
 *    delayed without delaying any consumer (capped at kSlackCap; a
 *    value with no observed consumer is maximally slack),
 *  - store slack (time until a younger load forwards from it; capped
 *    when no load ever forwards — such stores are not outputs from
 *    the scheduler's point of view), and
 *  - branch slack (zero when mispredicted: delay directly delays the
 *    redirect; capped otherwise).
 *
 * The result (SlackProfileData) is what the Slack-Profile selector
 * consumes.
 */

#ifndef MG_PROFILE_SLACK_PROFILE_H
#define MG_PROFILE_SLACK_PROFILE_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "assembler/program.h"
#include "isa/instruction.h"
#include "uarch/config.h"
#include "uarch/profiler_hooks.h"

namespace mg::profile
{

/** Local slack values above this are "unbounded" (cap). */
constexpr double kSlackCap = 64.0;

/** Aggregated profile for one static instruction. */
struct ProfileEntry
{
    double issueRel = 0.0;   ///< mean issue time rel. to BB head issue
    double readyRel = 0.0;   ///< mean output-ready time, same frame
    double srcReadyRel[2] = {0.0, 0.0}; ///< mean source ready per slot
    bool srcObserved[2] = {false, false};
    double slack = kSlackCap;       ///< mean local slack (register out)
    double storeSlack = kSlackCap;  ///< mean store-forward slack
    double branchSlack = kSlackCap; ///< mean branch slack
    uint64_t count = 0;             ///< resolved observations
};

/** The finished profile. */
struct SlackProfileData
{
    std::unordered_map<isa::Addr, ProfileEntry> entries;

    /** Entry for a PC, or nullptr if never observed. */
    const ProfileEntry *
    at(isa::Addr pc) const
    {
        auto it = entries.find(pc);
        return it == entries.end() ? nullptr : &it->second;
    }
};

/**
 * Sliding window of sequence-numbered records, used in place of an
 * unordered_map<uint64_t, V> where the keys (ROB sequence numbers,
 * basic-block instance ids) are near-dense and only live inside a
 * bounded window.  A power-of-two ring indexed by key avoids the
 * per-record node allocation and hashing that otherwise dominate the
 * profiler's cost on the issue path.  Slots are recycled through
 * V::reset(), so any buffer a record owns keeps its capacity.
 *
 * All live keys stay within [base, end) and that span never exceeds
 * the slot count (the ring grows to maintain this), so a key maps to
 * exactly one slot.
 */
template <typename V>
class SeqWindow
{
  public:
    /** @param initial_slots starting ring size (power of two). */
    explicit SeqWindow(size_t initial_slots)
        : initialSlots(initial_slots)
    {
    }

    size_t size() const { return liveCount; }

    /** Record for a key, or nullptr if absent. */
    V *
    find(uint64_t key)
    {
        if (key < base || key >= end)
            return nullptr;
        Slot &s = slots[key & mask];
        return (s.live && s.key == key) ? &s.v : nullptr;
    }

    /** operator[] semantics: existing record, or a fresh (reset) one. */
    V &
    get(uint64_t key)
    {
        if (slots.empty()) {
            slots.resize(initialSlots);
            mask = initialSlots - 1;
            base = end = key;
        }
        if (key < base)
            base = key;
        uint64_t hi = std::max(end, key + 1);
        while (hi - base > slots.size())
            grow();
        end = hi;
        Slot &s = slots[key & mask];
        if (!s.live || s.key != key) {
            s.key = key;
            s.live = true;
            s.v.reset();
            ++liveCount;
        }
        return s.v;
    }

    /** Drop every record with key >= first (squash semantics). */
    void
    eraseFrom(uint64_t first)
    {
        for (uint64_t k = std::max(base, first); k < end; ++k) {
            Slot &s = slots[k & mask];
            if (s.live && s.key == k) {
                s.live = false;
                --liveCount;
            }
        }
        end = std::max(base, std::min(end, first));
    }

    /** Retire every record with key < cutoff through fn. */
    template <typename Fn>
    void
    pruneBelow(uint64_t cutoff, Fn fn)
    {
        uint64_t stop = std::min(cutoff, end);
        for (uint64_t k = base; k < stop; ++k) {
            Slot &s = slots[k & mask];
            if (s.live && s.key == k) {
                fn(s.v);
                s.live = false;
                --liveCount;
            }
        }
        if (cutoff > base)
            base = std::min(cutoff, end);
    }

    template <typename Fn>
    void
    forEach(Fn fn)
    {
        for (uint64_t k = base; k < end; ++k) {
            Slot &s = slots[k & mask];
            if (s.live && s.key == k)
                fn(s.v);
        }
    }

    void clear() { eraseFrom(base); }

  private:
    struct Slot
    {
        uint64_t key = 0;
        bool live = false;
        V v;
    };

    void
    grow()
    {
        std::vector<Slot> next(slots.size() * 2);
        size_t next_mask = next.size() - 1;
        for (uint64_t k = base; k < end; ++k) {
            Slot &s = slots[k & mask];
            if (s.live && s.key == k)
                next[k & next_mask] = std::move(s);
        }
        slots = std::move(next);
        mask = next_mask;
    }

    size_t initialSlots;
    std::vector<Slot> slots;
    uint64_t base = 0;     ///< lowest key possibly live
    uint64_t end = 0;      ///< one past the highest key inserted
    size_t liveCount = 0;
    size_t mask = 0;
};

/**
 * The profiler: implements the core's observation hooks and builds a
 * SlackProfileData.  Attach with Core::setProfiler, run the singleton
 * program, then call finalize().
 */
class SlackProfiler : public uarch::ProfilerHooks
{
  public:
    SlackProfiler();
    ~SlackProfiler() override;

    void onIssue(const uarch::IssueObservation &obs) override;
    void onStoreForward(uint64_t store_seq,
                        uint64_t load_issue_cycle) override;
    void onSquash(uint64_t first_squashed) override;
    void onCommit(uint64_t seq) override;

    /** Fold all pending state and return the profile. */
    SlackProfileData finalize();

  private:
    struct Accumulator
    {
        double issueRelSum = 0.0;
        double readyRelSum = 0.0;
        double srcReadySum[2] = {0.0, 0.0};
        uint64_t srcReadyCount[2] = {0, 0};
        double slackSum = 0.0;
        uint64_t slackCount = 0;
        double storeSlackSum = 0.0;
        uint64_t storeSlackCount = 0;
        double branchSlackSum = 0.0;
        uint64_t branchSlackCount = 0;
        uint64_t count = 0;
    };

    /** Accumulator for a PC, growing the table on first touch. */
    Accumulator &
    accAt(isa::Addr pc)
    {
        if (acc.size() <= pc)
            acc.resize(pc + 1);
        return acc[pc];
    }

    /** Buffered per-dynamic-instruction record awaiting its BB head. */
    struct PendingIssue
    {
        isa::Addr pc;
        uint64_t seq;
        uint64_t issueCycle;
        uint64_t readyCycle;
        bool producesValue;
        uint8_t numSrcs;
        struct Src
        {
            uint8_t slot;
            uint64_t readyCycle;
            bool known;
        } srcs[3];
    };

    /** One dynamic basic-block instance being assembled. */
    struct BbInstance
    {
        bool headKnown = false;
        uint64_t headIssue = 0;
        std::vector<PendingIssue> pending;

        /** SeqWindow slot recycling; keeps pending's capacity. */
        void
        reset()
        {
            headKnown = false;
            headIssue = 0;
            pending.clear();
        }
    };

    /** Producer record for local-slack resolution. */
    struct Producer
    {
        isa::Addr pc = isa::kNoAddr;
        uint64_t readyCycle = 0;
        double minSlack = kSlackCap;
        bool isStore = false;
        uint64_t storeExecDone = 0;
        bool sawForward = false;
        double storeSlack = kSlackCap;

        /** SeqWindow slot recycling. */
        void reset() { *this = Producer(); }
    };

    void resolveInstance(BbInstance &bb);
    void foldPending(const PendingIssue &p, uint64_t head_issue);
    void finalizeProducer(const Producer &p);
    void pruneProducers();

    // PCs are instruction indices, so the accumulator table is a
    // plain vector; the seq-keyed maps are sliding windows (above).
    std::vector<Accumulator> acc;
    SeqWindow<BbInstance> instances{4096};
    SeqWindow<Producer> producers{16384};
    uint64_t minLiveProducer = 0;
};

/**
 * Convenience: profile one program on one machine configuration.
 * Runs the singleton program under a Core with the profiler attached.
 */
SlackProfileData profileProgram(const assembler::Program &prog,
                                const uarch::CoreConfig &config);

} // namespace mg::profile

#endif // MG_PROFILE_SLACK_PROFILE_H
