/**
 * @file
 * Local slack profiles (§4.3).
 *
 * A SlackProfiler attaches to a singleton (non-mini-graph) timing run
 * and aggregates, per static instruction:
 *
 *  - mean issue time relative to the issue time of the first
 *    instruction of its basic block (the paper's "convenient fixed
 *    reference point"),
 *  - mean ready time of each source operand (same reference frame),
 *  - mean local slack of its register output: the cycles it could be
 *    delayed without delaying any consumer (capped at kSlackCap; a
 *    value with no observed consumer is maximally slack),
 *  - store slack (time until a younger load forwards from it; capped
 *    when no load ever forwards — such stores are not outputs from
 *    the scheduler's point of view), and
 *  - branch slack (zero when mispredicted: delay directly delays the
 *    redirect; capped otherwise).
 *
 * The result (SlackProfileData) is what the Slack-Profile selector
 * consumes.
 */

#ifndef MG_PROFILE_SLACK_PROFILE_H
#define MG_PROFILE_SLACK_PROFILE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "assembler/program.h"
#include "isa/instruction.h"
#include "uarch/config.h"
#include "uarch/profiler_hooks.h"

namespace mg::profile
{

/** Local slack values above this are "unbounded" (cap). */
constexpr double kSlackCap = 64.0;

/** Aggregated profile for one static instruction. */
struct ProfileEntry
{
    double issueRel = 0.0;   ///< mean issue time rel. to BB head issue
    double readyRel = 0.0;   ///< mean output-ready time, same frame
    double srcReadyRel[2] = {0.0, 0.0}; ///< mean source ready per slot
    bool srcObserved[2] = {false, false};
    double slack = kSlackCap;       ///< mean local slack (register out)
    double storeSlack = kSlackCap;  ///< mean store-forward slack
    double branchSlack = kSlackCap; ///< mean branch slack
    uint64_t count = 0;             ///< resolved observations
};

/** The finished profile. */
struct SlackProfileData
{
    std::unordered_map<isa::Addr, ProfileEntry> entries;

    /** Entry for a PC, or nullptr if never observed. */
    const ProfileEntry *
    at(isa::Addr pc) const
    {
        auto it = entries.find(pc);
        return it == entries.end() ? nullptr : &it->second;
    }
};

/**
 * The profiler: implements the core's observation hooks and builds a
 * SlackProfileData.  Attach with Core::setProfiler, run the singleton
 * program, then call finalize().
 */
class SlackProfiler : public uarch::ProfilerHooks
{
  public:
    SlackProfiler();
    ~SlackProfiler() override;

    void onIssue(const uarch::IssueObservation &obs) override;
    void onStoreForward(uint64_t store_seq,
                        uint64_t load_issue_cycle) override;
    void onSquash(uint64_t first_squashed) override;
    void onCommit(uint64_t seq) override;

    /** Fold all pending state and return the profile. */
    SlackProfileData finalize();

  private:
    struct Accumulator
    {
        double issueRelSum = 0.0;
        double readyRelSum = 0.0;
        double srcReadySum[2] = {0.0, 0.0};
        uint64_t srcReadyCount[2] = {0, 0};
        double slackSum = 0.0;
        uint64_t slackCount = 0;
        double storeSlackSum = 0.0;
        uint64_t storeSlackCount = 0;
        double branchSlackSum = 0.0;
        uint64_t branchSlackCount = 0;
        uint64_t count = 0;
    };

    /** Buffered per-dynamic-instruction record awaiting its BB head. */
    struct PendingIssue
    {
        isa::Addr pc;
        uint64_t seq;
        uint64_t issueCycle;
        uint64_t readyCycle;
        bool producesValue;
        uint8_t numSrcs;
        struct Src
        {
            uint8_t slot;
            uint64_t readyCycle;
            bool known;
        } srcs[3];
    };

    /** One dynamic basic-block instance being assembled. */
    struct BbInstance
    {
        bool headKnown = false;
        uint64_t headIssue = 0;
        std::vector<PendingIssue> pending;
    };

    /** Producer record for local-slack resolution. */
    struct Producer
    {
        isa::Addr pc = isa::kNoAddr;
        uint64_t readyCycle = 0;
        double minSlack = kSlackCap;
        bool isStore = false;
        uint64_t storeExecDone = 0;
        bool sawForward = false;
        double storeSlack = kSlackCap;
    };

    void resolveInstance(BbInstance &bb);
    void foldPending(const PendingIssue &p, uint64_t head_issue);
    void finalizeProducer(const Producer &p);
    void pruneProducers();

    std::unordered_map<isa::Addr, Accumulator> acc;
    std::unordered_map<uint64_t, BbInstance> instances;
    std::unordered_map<uint64_t, Producer> producers;
    uint64_t minLiveProducer = 0;
};

/**
 * Convenience: profile one program on one machine configuration.
 * Runs the singleton program under a Core with the profiler attached.
 */
SlackProfileData profileProgram(const assembler::Program &prog,
                                const uarch::CoreConfig &config);

} // namespace mg::profile

#endif // MG_PROFILE_SLACK_PROFILE_H
