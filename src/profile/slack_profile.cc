#include "profile/slack_profile.h"

#include <algorithm>

#include "common/logging.h"
#include "uarch/core.h"

namespace mg::profile
{

namespace
{

constexpr uint64_t kProducerWindow = 4096;
constexpr uint64_t kProducerHighWater = 8192;
constexpr uint64_t kInstanceWindow = 1024;

} // namespace

SlackProfiler::SlackProfiler() = default;
SlackProfiler::~SlackProfiler() = default;

void
SlackProfiler::onIssue(const uarch::IssueObservation &obs)
{
    // --- consumer side: resolve local slack of source producers ---
    for (uint8_t i = 0; i < obs.numSrcs; ++i) {
        const uarch::SrcObservation &s = obs.srcs[i];
        if (s.producerPc == isa::kNoAddr)
            continue;
        Producer *prod = producers.find(s.producerSeq);
        if (!prod)
            continue;
        double sample = static_cast<double>(obs.issueCycle) -
                        static_cast<double>(s.readyCycle);
        prod->minSlack = std::min(prod->minSlack, sample);
    }

    // --- producer side: open a record for this value/store ---
    if (obs.producesValue || obs.isStore) {
        Producer p;
        p.pc = obs.pc;
        p.readyCycle = obs.readyCycle;
        p.isStore = obs.isStore;
        p.storeExecDone = obs.storeExecDone;
        producers.get(obs.seq) = p;
        if (producers.size() > kProducerHighWater)
            pruneProducers();
    }

    // --- branch slack (direct, needs no resolution) ---
    if (obs.isCondBranch) {
        Accumulator &a = accAt(obs.pc);
        a.branchSlackSum += obs.mispredicted ? 0.0 : kSlackCap;
        ++a.branchSlackCount;
    }

    // --- issue/ready times relative to the basic-block head ---
    PendingIssue pend;
    pend.pc = obs.pc;
    pend.seq = obs.seq;
    pend.issueCycle = obs.issueCycle;
    pend.readyCycle = obs.readyCycle;
    pend.producesValue = obs.producesValue;
    pend.numSrcs = obs.numSrcs;
    for (uint8_t i = 0; i < obs.numSrcs; ++i) {
        pend.srcs[i].slot = obs.srcs[i].slot;
        pend.srcs[i].readyCycle = obs.srcs[i].readyCycle;
        pend.srcs[i].known = obs.srcs[i].producerPc != isa::kNoAddr;
    }

    BbInstance &bb = instances.get(obs.bbInstance);
    if (obs.bbHead) {
        bb.headKnown = true;
        bb.headIssue = obs.issueCycle;
    }
    if (bb.headKnown) {
        foldPending(pend, bb.headIssue);
        resolveInstance(bb);
    } else {
        bb.pending.push_back(pend);
    }

    // Periodically drop stale instances (whose heads will never
    // issue, e.g. partially re-fetched blocks after a flush).
    if (instances.size() > 2 * kInstanceWindow) {
        uint64_t cutoff =
            obs.bbInstance > kInstanceWindow
                ? obs.bbInstance - kInstanceWindow
                : 0;
        instances.pruneBelow(cutoff, [](BbInstance &) {});
    }
}

void
SlackProfiler::resolveInstance(BbInstance &bb)
{
    if (!bb.headKnown)
        return;
    for (const PendingIssue &p : bb.pending)
        foldPending(p, bb.headIssue);
    bb.pending.clear();
}

void
SlackProfiler::foldPending(const PendingIssue &p, uint64_t head_issue)
{
    Accumulator &a = accAt(p.pc);
    double head = static_cast<double>(head_issue);
    a.issueRelSum += static_cast<double>(p.issueCycle) - head;
    if (p.producesValue)
        a.readyRelSum += static_cast<double>(p.readyCycle) - head;
    for (uint8_t i = 0; i < p.numSrcs; ++i) {
        uint8_t slot = p.srcs[i].slot;
        if (slot >= 2)
            continue; // singleton profiling: slots 0/1 only
        double rel = p.srcs[i].known
                         ? static_cast<double>(p.srcs[i].readyCycle) - head
                         : 0.0; // long-committed: by block start
        a.srcReadySum[slot] += rel;
        ++a.srcReadyCount[slot];
    }
    ++a.count;
}

void
SlackProfiler::onStoreForward(uint64_t store_seq, uint64_t load_issue)
{
    Producer *found = producers.find(store_seq);
    if (!found)
        return;
    Producer &p = *found;
    double sample = static_cast<double>(load_issue) -
                    static_cast<double>(p.storeExecDone);
    p.storeSlack = std::min(p.storeSlack, std::max(sample, 0.0));
    p.sawForward = true;
}

void
SlackProfiler::onSquash(uint64_t first_squashed)
{
    producers.eraseFrom(first_squashed);
    instances.forEach([&](BbInstance &bb) {
        std::erase_if(bb.pending, [&](const PendingIssue &p) {
            return p.seq >= first_squashed;
        });
    });
}

void
SlackProfiler::onCommit(uint64_t seq)
{
    minLiveProducer = std::max(minLiveProducer,
                               seq > kProducerWindow
                                   ? seq - kProducerWindow
                                   : 0);
}

void
SlackProfiler::finalizeProducer(const Producer &p)
{
    Accumulator &a = accAt(p.pc);
    if (p.isStore) {
        a.storeSlackSum += p.sawForward ? std::min(p.storeSlack, kSlackCap)
                                        : kSlackCap;
        ++a.storeSlackCount;
    } else {
        a.slackSum += std::clamp(p.minSlack, 0.0, kSlackCap);
        ++a.slackCount;
    }
}

void
SlackProfiler::pruneProducers()
{
    producers.pruneBelow(minLiveProducer,
                         [this](const Producer &p) { finalizeProducer(p); });
}

SlackProfileData
SlackProfiler::finalize()
{
    producers.forEach([this](const Producer &p) { finalizeProducer(p); });
    producers.clear();
    instances.clear();

    SlackProfileData data;
    for (isa::Addr pc = 0; pc < acc.size(); ++pc) {
        const Accumulator &a = acc[pc];
        if (a.count == 0)
            continue;
        ProfileEntry e;
        double n = static_cast<double>(a.count);
        e.issueRel = a.issueRelSum / n;
        e.readyRel = a.readyRelSum / n;
        for (int s = 0; s < 2; ++s) {
            if (a.srcReadyCount[s]) {
                e.srcReadyRel[s] =
                    a.srcReadySum[s] /
                    static_cast<double>(a.srcReadyCount[s]);
                e.srcObserved[s] = true;
            }
        }
        e.slack = a.slackCount
                      ? a.slackSum / static_cast<double>(a.slackCount)
                      : kSlackCap;
        e.storeSlack = a.storeSlackCount
                           ? a.storeSlackSum /
                                 static_cast<double>(a.storeSlackCount)
                           : kSlackCap;
        e.branchSlack = a.branchSlackCount
                            ? a.branchSlackSum /
                                  static_cast<double>(a.branchSlackCount)
                            : kSlackCap;
        e.count = a.count;
        data.entries.emplace(pc, e);
    }
    return data;
}

SlackProfileData
profileProgram(const assembler::Program &prog,
               const uarch::CoreConfig &config)
{
    SlackProfiler profiler;
    uarch::Core core(config, prog);
    core.setProfiler(&profiler);
    core.run();
    return profiler.finalize();
}

} // namespace mg::profile
