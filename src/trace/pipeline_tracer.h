/**
 * @file
 * Pipeline trace collection: a ProfilerHooks sink that records the
 * per-stage timeline of every dynamic instruction inside a cycle
 * window, for export as a Konata log (src/trace/konata.h), a Chrome
 * trace_event JSON (src/trace/chrome_trace.h), or ad-hoc analysis.
 *
 * The tracer attaches through the same seam the slack profiler uses
 * (uarch/profiler_hooks.h); the core pays nothing when no sink is
 * attached.  See docs/TRACING.md.
 */

#ifndef MG_TRACE_PIPELINE_TRACER_H
#define MG_TRACE_PIPELINE_TRACER_H

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "uarch/profiler_hooks.h"

namespace mg::trace
{

/** What to trace and where to write it (RunRequest::trace). */
struct TraceConfig
{
    /** Record instructions fetched at or after this cycle. */
    uint64_t startCycle = 0;

    /** Stop recording instructions fetched after this cycle. */
    uint64_t endCycle = std::numeric_limits<uint64_t>::max();

    /** Konata pipeline log destination ("" = do not write). */
    std::string konataPath;

    /** Chrome trace_event JSON destination ("" = do not write). */
    std::string chromePath;
};

/** The recorded timeline of one dynamic instruction. */
struct InstRecord
{
    uint64_t seq = 0;
    uint32_t pc = 0;
    std::string disasm;
    bool isHandle = false;
    uint8_t mgSize = 0;

    uint64_t fetchCycle = 0;
    uint64_t dispatchCycle = 0; ///< 0 = never dispatched
    uint64_t issueCycle = 0;    ///< 0 = never issued
    uint64_t completeCycle = 0; ///< 0 = never completed
    uint64_t commitCycle = 0;   ///< 0 = not (yet) committed

    bool committed = false;
    bool squashed = false;
    uint64_t squashCycle = 0;

    bool mispredicted = false;
    bool isLoad = false;
    bool isStore = false;
    bool missedCache = false;
};

/**
 * ProfilerHooks implementation that builds InstRecords.  Squashed
 * instructions stay in the record stream (marked squashed); a re-used
 * sequence number after a flush starts a fresh record.
 */
class PipelineTracer : public uarch::ProfilerHooks
{
  public:
    explicit PipelineTracer(const TraceConfig &config = {})
        : cfg(config)
    {
    }

    void onFetch(const uarch::FetchObservation &obs) override;
    void onDispatch(const uarch::DispatchObservation &obs) override;
    void onIssue(const uarch::IssueObservation &obs) override;
    void onCommitDetail(const uarch::CommitObservation &obs) override;
    void onSquash(uint64_t first_squashed) override;

    void onStoreForward(uint64_t, uint64_t) override {}
    void onCommit(uint64_t) override {}

    /** All records, in fetch order. */
    const std::vector<InstRecord> &records() const { return recs; }

    const TraceConfig &config() const { return cfg; }

  private:
    InstRecord *liveRecord(uint64_t seq);

    TraceConfig cfg;
    std::vector<InstRecord> recs;

    /** seq -> index of the *live* (not squashed) record for it. */
    std::unordered_map<uint64_t, size_t> live;

    /** Latest cycle seen on any event (squash-cycle estimate). */
    uint64_t lastCycle = 0;
};

} // namespace mg::trace

#endif // MG_TRACE_PIPELINE_TRACER_H
