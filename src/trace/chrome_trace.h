/**
 * @file
 * Chrome trace_event JSON export.  Open in chrome://tracing, Perfetto
 * (ui.perfetto.dev), or speedscope.  One complete ("ph":"X") event per
 * occupied pipeline phase per instruction; 1 cycle == 1 "microsecond".
 */

#ifndef MG_TRACE_CHROME_TRACE_H
#define MG_TRACE_CHROME_TRACE_H

#include <string>
#include <vector>

#include "trace/pipeline_tracer.h"

namespace mg::trace
{

/** Render the records as {"traceEvents":[...]} JSON. */
std::string chromeTraceToString(const std::vector<InstRecord> &recs);

} // namespace mg::trace

#endif // MG_TRACE_CHROME_TRACE_H
