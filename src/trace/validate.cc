#include "trace/validate.h"

namespace mg::trace
{

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &s)
        : text(s)
    {
    }

    /** Parse one complete value; return "" or an error string. */
    std::string
    run()
    {
        skipWs();
        if (!value())
            return error;
        skipWs();
        if (pos != text.size())
            fail("trailing data");
        return error;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    bool
    value()
    {
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string()
    {
        ++pos; // '"'
        while (pos < text.size()) {
            unsigned char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() || !isHex(text[pos]))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
                ++pos;
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() || !isDigit(text[pos]))
            return fail("expected value");
        if (text[pos] == '0') {
            ++pos;
        } else {
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                return fail("bad fraction");
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                return fail("bad exponent");
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        return pos > start;
    }

    static bool
    isDigit(char c)
    {
        return c >= '0' && c <= '9';
    }

    static bool
    isHex(char c)
    {
        return isDigit(c) || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    }

    const std::string &text;
    size_t pos = 0;
    std::string error;
};

} // namespace

std::string
validateJson(const std::string &text)
{
    return Parser(text).run();
}

} // namespace mg::trace
