/**
 * @file
 * Parser for the deterministic stats JSON emitted by
 * trace::statsJson / trace::errorJson: reconstructs the StatsMeta and
 * uarch::SimResult a line was serialized from.
 *
 * This is the wire format of the process-isolated runner (the child
 * marshals its result over a pipe as one stats line) and of the batch
 * journal (`mgsim batch --journal/--resume`), so the parse must be
 * *faithful*: every double statsJson emits is derived from integer
 * counters, hence
 *
 *     statsJson(parse(line)) == line        (byte-identical)
 *
 * for any line statsJson produced.  The round trip is enforced by
 * tests/trace/stats_parse_test.cc.
 */

#ifndef MG_TRACE_STATS_PARSE_H
#define MG_TRACE_STATS_PARSE_H

#include <string>

#include "trace/stats_json.h"
#include "uarch/sim_stats.h"

namespace mg::trace
{

/** One decoded stats (or error) line. */
struct ParsedStats
{
    StatsMeta meta;
    uarch::SimResult sim;

    /** True if the line was an errorJson record. */
    bool isError = false;

    /** Error message (errorJson lines). */
    std::string error;

    /** Structured error fields (errorJson lines; defaults if absent). */
    ErrorDetail detail;
};

/**
 * Decode one line produced by statsJson() or errorJson().
 *
 * @return "" on success, else a description of the first problem
 *         (malformed JSON, missing key, non-integer counter).
 */
std::string parseStatsJson(const std::string &line, ParsedStats &out);

} // namespace mg::trace

#endif // MG_TRACE_STATS_PARSE_H
