#include "trace/pipeline_tracer.h"

#include "isa/instruction.h"

namespace mg::trace
{

InstRecord *
PipelineTracer::liveRecord(uint64_t seq)
{
    auto it = live.find(seq);
    if (it == live.end())
        return nullptr;
    return &recs[it->second];
}

void
PipelineTracer::onFetch(const uarch::FetchObservation &obs)
{
    lastCycle = obs.cycle;
    if (obs.cycle < cfg.startCycle || obs.cycle > cfg.endCycle)
        return;

    InstRecord r;
    r.seq = obs.seq;
    r.pc = obs.pc;
    if (obs.inst)
        r.disasm = isa::disassemble(*obs.inst);
    r.isHandle = obs.isHandle;
    r.mgSize = obs.mgSize;
    r.fetchCycle = obs.cycle;
    r.isLoad = obs.inst && obs.inst->isLoad();
    r.isStore = obs.inst && obs.inst->isStore();

    // A re-used seq after a flush replaces the live mapping; the old
    // (squashed) record stays in the stream.
    live[obs.seq] = recs.size();
    recs.push_back(std::move(r));
}

void
PipelineTracer::onDispatch(const uarch::DispatchObservation &obs)
{
    lastCycle = obs.cycle;
    if (InstRecord *r = liveRecord(obs.seq))
        r->dispatchCycle = obs.cycle;
}

void
PipelineTracer::onIssue(const uarch::IssueObservation &obs)
{
    lastCycle = obs.issueCycle;
    if (InstRecord *r = liveRecord(obs.seq)) {
        r->issueCycle = obs.issueCycle;
        r->mispredicted = obs.mispredicted;
    }
}

void
PipelineTracer::onCommitDetail(const uarch::CommitObservation &obs)
{
    lastCycle = obs.cycle;
    InstRecord *r = liveRecord(obs.seq);
    if (!r)
        return;
    r->dispatchCycle = obs.dispatchCycle;
    r->issueCycle = obs.issueCycle;
    r->completeCycle = obs.completeCycle;
    r->commitCycle = obs.cycle;
    r->committed = true;
    r->mispredicted = obs.mispredicted;
    r->isLoad = obs.isLoad;
    r->isStore = obs.isStore;
    r->missedCache = obs.missedCache;
    live.erase(obs.seq);
}

void
PipelineTracer::onSquash(uint64_t first_squashed)
{
    for (auto it = live.begin(); it != live.end();) {
        if (it->first >= first_squashed) {
            InstRecord &r = recs[it->second];
            r.squashed = true;
            r.squashCycle = lastCycle;
            it = live.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace mg::trace
