/**
 * @file
 * Minimal recursive-descent JSON syntax checker, used to round-trip
 * validate the Chrome trace and stats output without an external JSON
 * dependency.  Accepts exactly RFC 8259 (objects, arrays, strings
 * with escapes, numbers, true/false/null); no extensions.
 */

#ifndef MG_TRACE_VALIDATE_H
#define MG_TRACE_VALIDATE_H

#include <string>

namespace mg::trace
{

/**
 * Validate that `text` is one complete JSON value.
 *
 * @return "" if valid, else a description with the byte offset of the
 *         first problem.
 */
std::string validateJson(const std::string &text);

} // namespace mg::trace

#endif // MG_TRACE_VALIDATE_H
