#include "trace/stats_json.h"

#include <cstdio>

namespace mg::trace
{

namespace
{

/** JSON string escape. */
std::string
esc(const std::string &s)
{
    return jsonEscape(s);
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/** Key/value emitter building one flat object at a time. */
class Obj
{
  public:
    explicit Obj(std::string &out)
        : o(out)
    {
        o += '{';
    }

    void
    key(const char *k)
    {
        if (!first)
            o += ',';
        first = false;
        o += '"';
        o += k;
        o += "\":";
    }

    void
    u64(const char *k, uint64_t v)
    {
        key(k);
        o += std::to_string(v);
    }

    void
    f64(const char *k, double v)
    {
        key(k);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6f", v);
        o += buf;
    }

    void
    str(const char *k, const std::string &v)
    {
        key(k);
        o += '"';
        o += esc(v);
        o += '"';
    }

    void
    close()
    {
        o += '}';
    }

  private:
    std::string &o;
    bool first = true;
};

void
cache(std::string &out, Obj &parent, const char *name,
      const uarch::CacheStats &c)
{
    parent.key(name);
    Obj o(out);
    o.u64("accesses", c.accesses);
    o.u64("misses", c.misses);
    o.f64("missRate", c.missRate());
    o.close();
}

} // namespace

std::string
templateLabel(const isa::MgTemplate &tmpl)
{
    std::string out;
    for (const isa::MgConstituent &c : tmpl.ops) {
        if (!out.empty())
            out += '+';
        out += isa::mnemonic(c.op);
    }
    return out;
}

std::string
statsJson(const StatsMeta &meta, const uarch::SimResult &res)
{
    std::string out;
    out.reserve(2048);
    Obj top(out);

    top.str("workload", meta.workload);
    top.str("config", meta.config);
    top.str("selector", meta.selector);

    top.u64("cycles", res.cycles);
    top.u64("originalInsts", res.originalInsts);
    top.u64("committedUnits", res.committedUnits);
    top.u64("committedHandles", res.committedHandles);
    top.u64("coveredInsts", res.coveredInsts);
    top.f64("ipc", res.ipc());
    top.f64("coverage", res.coverage());

    top.key("minigraphs");
    {
        Obj mg(out);
        mg.u64("instances", meta.mgInstances);
        mg.u64("templatesUsed", meta.mgTemplatesUsed);
        mg.u64("disabledExpansions", res.disabledExpansions);
        mg.u64("outliningJumps", res.outliningJumps);
        mg.u64("slackDynamicDisabledStatic",
               res.slackDynamicDisabledStatic);
        mg.close();
    }

    // --- cycle-loss accounting ---
    top.key("lossAccounting");
    if (res.accountedWidth == 0) {
        out += "null";
    } else {
        Obj la(out);
        la.u64("commitWidth", res.accountedWidth);
        la.u64("totalSlots", res.totalSlots());
        la.u64("usedSlots", res.committedUnits);
        la.u64("lostSlots", res.lostSlots());
        la.key("buckets");
        {
            Obj b(out);
            for (size_t i = 0; i < uarch::kNumLossBuckets; ++i)
                b.u64(uarch::lossBucketName(
                          static_cast<uarch::LossBucket>(i)),
                      res.lossSlots[i]);
            b.close();
        }
        la.close();
    }

    top.key("mgTemplates");
    out += '[';
    for (size_t i = 0; i < res.mgTemplates.size(); ++i) {
        if (i)
            out += ',';
        const uarch::MgTemplateSerialStats &t = res.mgTemplates[i];
        Obj to(out);
        to.u64("id", i);
        if (i < meta.templateNames.size())
            to.str("name", meta.templateNames[i]);
        to.u64("issues", t.issues);
        to.u64("extWaitCycles", t.extWaitCycles);
        to.u64("intPenaltyCycles", t.intPenaltyCycles);
        to.close();
    }
    out += ']';

    top.key("stalls");
    {
        Obj st(out);
        st.u64("rob", res.robStallCycles);
        st.u64("iq", res.iqStallCycles);
        st.u64("reg", res.regStallCycles);
        st.close();
    }

    top.key("blame");
    {
        Obj bl(out);
        bl.u64("notDispatched", res.blameNotDispatched);
        bl.u64("earliest", res.blameEarliest);
        bl.u64("srcs", res.blameSrcs);
        bl.u64("memDep", res.blameMemDep);
        bl.u64("fu", res.blameFu);
        bl.u64("replay", res.blameReplay);
        bl.u64("issued", res.blameIssued);
        bl.close();
    }

    top.key("branchPred");
    {
        Obj bp(out);
        bp.u64("condPredictions", res.branchPred.condPredictions);
        bp.u64("condMispredicts", res.branchPred.condMispredicts);
        bp.f64("condMispredictRate",
               res.branchPred.condMispredictRate());
        bp.u64("btbMisses", res.branchPred.btbMisses);
        bp.u64("rasPredictions", res.branchPred.rasPredictions);
        bp.u64("rasMispredicts", res.branchPred.rasMispredicts);
        bp.close();
    }

    top.key("caches");
    {
        Obj cs(out);
        cache(out, cs, "icache", res.icache);
        cache(out, cs, "dcache", res.dcache);
        cache(out, cs, "l2", res.l2);
        cache(out, cs, "itlb", res.itlb);
        cache(out, cs, "dtlb", res.dtlb);
        cs.close();
    }

    top.key("memory");
    {
        Obj m(out);
        m.u64("orderViolations", res.memOrderViolations);
        m.u64("issueReplays", res.issueReplays);
        m.u64("storeSetViolations", res.storeSets.violations);
        m.u64("storeSetLoadsDeferred", res.storeSets.loadsDeferred);
        m.close();
    }

    top.key("slackDynamic");
    {
        Obj sd(out);
        sd.u64("serializedIssues", res.slackDynamic.serializedIssues);
        sd.u64("harmfulEvents", res.slackDynamic.harmfulEvents);
        sd.u64("disables", res.slackDynamic.disables);
        sd.u64("resurrections", res.slackDynamic.resurrections);
        sd.close();
    }

    top.close();
    return out;
}

std::string
errorJson(const StatsMeta &meta, const std::string &error)
{
    std::string out;
    Obj top(out);
    top.str("workload", meta.workload);
    top.str("config", meta.config);
    top.str("selector", meta.selector);
    top.str("error", error);
    top.close();
    return out;
}

std::string
errorJson(const StatsMeta &meta, const std::string &error,
          const ErrorDetail &detail)
{
    std::string out;
    Obj top(out);
    top.str("workload", meta.workload);
    top.str("config", meta.config);
    top.str("selector", meta.selector);
    top.str("error", error);
    top.str("errorClass", detail.cls);
    top.u64("signal", static_cast<uint64_t>(
                          detail.signal < 0 ? 0 : detail.signal));
    top.key("exitStatus");
    out += std::to_string(detail.exitStatus);
    top.u64("lastCycle", detail.lastCycle);
    top.u64("attempts", detail.attempts);
    top.str("stderrTail", detail.stderrTail);
    top.close();
    return out;
}

} // namespace mg::trace
