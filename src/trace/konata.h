/**
 * @file
 * Konata pipeline-log export (https://github.com/shioyadan/Konata).
 *
 * The emitted log uses Kanata format version 0004: a header line
 * `Kanata\t0004`, a `C=` absolute-cycle seed, and per-instruction
 * I/L/S/E/R commands separated by `C` cycle advances.  Stages shown:
 * F (fetch), Ds (dispatch/wait), Is (execute), Cm (commit-eligible).
 */

#ifndef MG_TRACE_KONATA_H
#define MG_TRACE_KONATA_H

#include <string>
#include <vector>

#include "trace/pipeline_tracer.h"

namespace mg::trace
{

/** Render the records as a Konata (Kanata 0004) log. */
std::string konataToString(const std::vector<InstRecord> &recs);

/**
 * Round-trip validate a Konata log: header, known commands, field
 * counts, ids introduced before use, monotonic cycle advances.
 *
 * @return "" if valid, else a description of the first problem.
 */
std::string validateKonata(const std::string &log);

} // namespace mg::trace

#endif // MG_TRACE_KONATA_H
