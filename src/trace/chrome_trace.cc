#include "trace/chrome_trace.h"

#include <cstdio>

namespace mg::trace
{

namespace
{

/** JSON string escape (control chars, quote, backslash). */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
event(std::string &out, bool &first, const std::string &name,
      const char *phase, uint64_t tid, uint64_t ts, uint64_t dur,
      uint64_t seq, uint32_t pc)
{
    if (!first)
        out += ",";
    first = false;
    char buf[128];
    out += "{\"name\":\"" + esc(name) + "\",\"cat\":\"";
    out += phase;
    std::snprintf(buf, sizeof buf,
                  "\",\"ph\":\"X\",\"pid\":0,\"tid\":%llu,"
                  "\"ts\":%llu,\"dur\":%llu,",
                  static_cast<unsigned long long>(tid),
                  static_cast<unsigned long long>(ts),
                  static_cast<unsigned long long>(dur));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "\"args\":{\"seq\":%llu,\"pc\":\"0x%x\"}}",
                  static_cast<unsigned long long>(seq), pc);
    out += buf;
}

} // namespace

std::string
chromeTraceToString(const std::vector<InstRecord> &recs)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;

    // Lay instructions out round-robin over a few lanes so
    // overlapping lifetimes render as parallel tracks.
    constexpr uint64_t kLanes = 8;

    for (const InstRecord &r : recs) {
        uint64_t tid = r.seq % kLanes;
        std::string name = r.disasm.empty() ? "?" : r.disasm;
        if (r.squashed)
            name = "[squashed] " + name;

        uint64_t end = r.committed ? r.commitCycle : r.squashCycle;
        auto phaseEnd = [&](uint64_t next) {
            return next > 0 ? next : end;
        };

        uint64_t fe = phaseEnd(r.dispatchCycle);
        if (fe > r.fetchCycle)
            event(out, first, name, "fetch", tid, r.fetchCycle,
                  fe - r.fetchCycle, r.seq, r.pc);
        if (r.dispatchCycle > 0) {
            uint64_t de = phaseEnd(r.issueCycle);
            if (de > r.dispatchCycle)
                event(out, first, name, "wait", tid, r.dispatchCycle,
                      de - r.dispatchCycle, r.seq, r.pc);
        }
        if (r.issueCycle > 0) {
            uint64_t ie = phaseEnd(r.completeCycle);
            if (ie > r.issueCycle)
                event(out, first, name, "execute", tid, r.issueCycle,
                      ie - r.issueCycle, r.seq, r.pc);
        }
        if (r.completeCycle > 0 && end > r.completeCycle)
            event(out, first, name, "commit-wait", tid,
                  r.completeCycle, end - r.completeCycle, r.seq, r.pc);
    }

    out += "]}";
    return out;
}

} // namespace mg::trace
