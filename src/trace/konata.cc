#include "trace/konata.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace mg::trace
{

namespace
{

struct Cmd
{
    uint64_t cycle;
    uint64_t order; ///< stable tiebreak: emission order
    std::string text;
};

void
push(std::vector<Cmd> &cmds, uint64_t cycle, std::string text)
{
    cmds.push_back({cycle, cmds.size(), std::move(text)});
}

} // namespace

std::string
konataToString(const std::vector<InstRecord> &recs)
{
    std::vector<Cmd> cmds;
    uint64_t id = 0;
    uint64_t retired = 0;

    for (const InstRecord &r : recs) {
        const uint64_t i = id++;
        std::string label = r.disasm.empty() ? "?" : r.disasm;
        if (r.isHandle)
            label += " [mg/" + std::to_string(unsigned(r.mgSize)) + "]";

        char buf[64];
        std::snprintf(buf, sizeof buf, "%08x: ", r.pc);

        push(cmds, r.fetchCycle,
             "I\t" + std::to_string(i) + "\t" + std::to_string(r.seq) +
                 "\t0");
        push(cmds, r.fetchCycle,
             "L\t" + std::to_string(i) + "\t0\t" + buf + label);
        push(cmds, r.fetchCycle, "S\t" + std::to_string(i) + "\t0\tF");

        if (r.dispatchCycle > 0)
            push(cmds, r.dispatchCycle,
                 "S\t" + std::to_string(i) + "\t0\tDs");
        if (r.issueCycle > 0)
            push(cmds, r.issueCycle,
                 "S\t" + std::to_string(i) + "\t0\tIs");
        if (r.completeCycle > 0)
            push(cmds, r.completeCycle,
                 "S\t" + std::to_string(i) + "\t0\tCm");

        if (r.committed) {
            push(cmds, r.commitCycle,
                 "E\t" + std::to_string(i) + "\t0\tCm");
            push(cmds, r.commitCycle,
                 "R\t" + std::to_string(i) + "\t" +
                     std::to_string(retired++) + "\t0");
        } else {
            // Squashed or still in flight at end of trace: flush.
            uint64_t end = std::max(
                {r.squashCycle, r.fetchCycle, r.dispatchCycle,
                 r.issueCycle, r.completeCycle});
            push(cmds, end,
                 "R\t" + std::to_string(i) + "\t0\t1");
        }
    }

    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const Cmd &a, const Cmd &b) {
                         if (a.cycle != b.cycle)
                             return a.cycle < b.cycle;
                         return a.order < b.order;
                     });

    std::string out = "Kanata\t0004\n";
    uint64_t cur = cmds.empty() ? 0 : cmds.front().cycle;
    out += "C=\t" + std::to_string(cur) + "\n";
    for (const Cmd &c : cmds) {
        if (c.cycle != cur) {
            out += "C\t" + std::to_string(c.cycle - cur) + "\n";
            cur = c.cycle;
        }
        out += c.text;
        out += '\n';
    }
    return out;
}

namespace
{

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> f;
    size_t start = 0;
    while (true) {
        size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            f.push_back(line.substr(start));
            return f;
        }
        f.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
isUint(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (c < '0' || c > '9')
            return false;
    return true;
}

} // namespace

std::string
validateKonata(const std::string &log)
{
    std::istringstream in(log);
    std::string line;
    size_t lineno = 0;
    bool sawHeader = false;
    bool sawSeed = false;
    std::set<uint64_t> ids;

    auto err = [&](const std::string &what) {
        return "line " + std::to_string(lineno) + ": " + what;
    };

    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        auto f = splitTabs(line);

        if (!sawHeader) {
            if (f.size() != 2 || f[0] != "Kanata" || f[1] != "0004")
                return err("expected 'Kanata\\t0004' header");
            sawHeader = true;
            continue;
        }

        const std::string &cmd = f[0];
        if (cmd == "C=") {
            if (f.size() != 2 || !isUint(f[1]))
                return err("malformed C=");
            sawSeed = true;
        } else if (cmd == "C") {
            if (f.size() != 2 || !isUint(f[1]))
                return err("malformed C");
            if (!sawSeed)
                return err("C before C=");
            if (std::strtoull(f[1].c_str(), nullptr, 10) == 0)
                return err("zero cycle advance");
        } else if (cmd == "I") {
            if (f.size() != 4 || !isUint(f[1]) || !isUint(f[2]) ||
                !isUint(f[3]))
                return err("malformed I");
            ids.insert(std::strtoull(f[1].c_str(), nullptr, 10));
        } else if (cmd == "L") {
            if (f.size() != 4 || !isUint(f[1]) || !isUint(f[2]))
                return err("malformed L");
            if (!ids.count(std::strtoull(f[1].c_str(), nullptr, 10)))
                return err("L references unknown id " + f[1]);
        } else if (cmd == "S" || cmd == "E") {
            if (f.size() != 4 || !isUint(f[1]) || !isUint(f[2]) ||
                f[3].empty())
                return err("malformed " + cmd);
            if (!ids.count(std::strtoull(f[1].c_str(), nullptr, 10)))
                return err(cmd + " references unknown id " + f[1]);
        } else if (cmd == "R") {
            if (f.size() != 4 || !isUint(f[1]) || !isUint(f[2]) ||
                !isUint(f[3]))
                return err("malformed R");
            if (!ids.count(std::strtoull(f[1].c_str(), nullptr, 10)))
                return err("R references unknown id " + f[1]);
            const std::string &type = f[3];
            if (type != "0" && type != "1")
                return err("R type must be 0 or 1");
        } else {
            return err("unknown command '" + cmd + "'");
        }
    }

    if (!sawHeader)
        return "empty log (no header)";
    if (!sawSeed)
        return "missing C= cycle seed";
    return "";
}

} // namespace mg::trace
