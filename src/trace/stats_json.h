/**
 * @file
 * Machine-readable run statistics: one compact, deterministic JSON
 * object per run, including the cycle-loss bucket breakdown and the
 * per-template serialization counters.  Consumed by `mgsim run/batch
 * --json`, `mgsim trace`, the golden-stats snapshot tests, and the
 * parallel-runner determinism test.
 *
 * Determinism contract: same inputs -> byte-identical output.  Keys
 * are emitted in a fixed order, doubles with a fixed "%.6f" format,
 * no whitespace, one line.
 */

#ifndef MG_TRACE_STATS_JSON_H
#define MG_TRACE_STATS_JSON_H

#include <string>
#include <vector>

#include "isa/minigraph_types.h"
#include "uarch/sim_stats.h"

namespace mg::trace
{

/**
 * Human-readable template label: constituent mnemonics joined with
 * '+' (e.g. "add+lw+xor").  Stable across runs for a given binary.
 */
std::string templateLabel(const isa::MgTemplate &tmpl);

/**
 * Identification of the run, pre-resolved to plain strings so this
 * library needs nothing from src/sim (which depends on us).
 */
struct StatsMeta
{
    std::string workload;
    std::string config;
    std::string selector;

    /** Template labels aligned with SimResult::mgTemplates ("" ok). */
    std::vector<std::string> templateNames;

    /** Static mini-graph instances in the rewritten binary. */
    uint64_t mgInstances = 0;

    /** Distinct templates used by the rewritten binary. */
    uint64_t mgTemplatesUsed = 0;
};

/** Serialize one run's stats (single line, no trailing newline). */
std::string statsJson(const StatsMeta &meta,
                      const uarch::SimResult &res);

/**
 * Structured failure description for errorJson: how a run died, in
 * plain strings/integers so this library needs nothing from src/sim
 * (sim::RunError converts into one of these).
 */
struct ErrorDetail
{
    /** Error-class registry name (e.g. "crash", "timeout"). */
    std::string cls;

    /** Death signal (process-isolated runs; 0 = none). */
    int signal = 0;

    /** Child exit status (-1 = did not exit normally / unknown). */
    int exitStatus = -1;

    /** Last simulated cycle observed before the failure (0 = unknown). */
    uint64_t lastCycle = 0;

    /** Execution attempts made, including retries. */
    uint64_t attempts = 1;

    /** Tail of the failed run's captured stderr ("" = none). */
    std::string stderrTail;
};

/** Serialize a failed run ({"workload":...,"error":...}). */
std::string errorJson(const StatsMeta &meta, const std::string &error);

/** Serialize a failed run with the structured failure fields. */
std::string errorJson(const StatsMeta &meta, const std::string &error,
                      const ErrorDetail &detail);

/** JSON string escape (exported for callers composing JSON lines). */
std::string jsonEscape(const std::string &s);

} // namespace mg::trace

#endif // MG_TRACE_STATS_JSON_H
