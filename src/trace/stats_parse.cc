#include "trace/stats_parse.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

namespace mg::trace
{

namespace
{

/**
 * Minimal JSON document model.  Numbers keep their raw text so
 * integer counters round-trip exactly (no double conversion).
 */
struct JsonValue
{
    enum class Kind : uint8_t { Null, Bool, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< raw number text, or decoded string
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &m : members)
            if (m.first == key)
                return &m.second;
        return nullptr;
    }
};

/** Recursive-descent parser building a JsonValue tree. */
class DomParser
{
  public:
    explicit DomParser(const std::string &s) : text(s) {}

    std::string
    run(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return error;
        skipWs();
        if (pos != text.size())
            fail("trailing data");
        return error;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
        case '{': return object(out);
        case '[': return array(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default: return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            out.elements.push_back(std::move(v));
            skipWs();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos; // '"'
        while (pos < text.size()) {
            unsigned char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() || !isHex(text[pos]))
                            return fail("bad \\u escape");
                        v = v * 16 + hexVal(text[pos]);
                    }
                    // The writer only emits \u00xx control bytes;
                    // decode BMP code points as UTF-8 for good measure.
                    if (v < 0x80) {
                        out += static_cast<char>(v);
                    } else if (v < 0x800) {
                        out += static_cast<char>(0xC0 | (v >> 6));
                        out += static_cast<char>(0x80 | (v & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (v >> 12));
                        out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (v & 0x3F));
                    }
                    break;
                }
                default: return fail("bad escape character");
                }
                ++pos;
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                out += static_cast<char>(c);
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Number;
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() || !isDigit(text[pos]))
            return fail("expected value");
        while (pos < text.size() && isDigit(text[pos]))
            ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                return fail("bad fraction");
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() || !isDigit(text[pos]))
                return fail("bad exponent");
            while (pos < text.size() && isDigit(text[pos]))
                ++pos;
        }
        out.text = text.substr(start, pos - start);
        return true;
    }

    static bool
    isDigit(char c)
    {
        return c >= '0' && c <= '9';
    }

    static bool
    isHex(char c)
    {
        return isDigit(c) || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    }

    static unsigned
    hexVal(char c)
    {
        if (isDigit(c))
            return static_cast<unsigned>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<unsigned>(c - 'a' + 10);
        return static_cast<unsigned>(c - 'A' + 10);
    }

    const std::string &text;
    size_t pos = 0;
    std::string error;
};

/**
 * Field extraction helper: accumulates the first error and makes the
 * happy path read as a flat list of assignments.
 */
class Extract
{
  public:
    std::string error;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what;
        return false;
    }

    bool
    u64(const JsonValue &obj, const char *key, uint64_t &out)
    {
        const JsonValue *v = obj.find(key);
        if (!v || v->kind != JsonValue::Kind::Number)
            return fail(std::string("missing counter '") + key + "'");
        // Counters are non-negative integers; the tokenizer already
        // rejects NaN/Infinity as syntax errors, but "-5", "1.5" and
        // "1e3" are valid JSON numbers that strtoull would quietly
        // mangle (wrap, truncate, stop at the dot), as would a value
        // past 2^64 (ERANGE saturation).  All of those are corrupt
        // input for a counter field, not data.
        const std::string &t = v->text;
        if (t.find_first_of("-.eE") != std::string::npos)
            return fail(std::string("counter '") + key +
                        "' is not a non-negative integer");
        errno = 0;
        char *end = nullptr;
        out = std::strtoull(t.c_str(), &end, 10);
        if (errno == ERANGE || end != t.c_str() + t.size())
            return fail(std::string("counter '") + key +
                        "' out of uint64 range");
        return true;
    }

    bool
    u32(const JsonValue &obj, const char *key, uint32_t &out)
    {
        uint64_t v = 0;
        if (!u64(obj, key, v))
            return false;
        if (v > UINT32_MAX)
            return fail(std::string("counter '") + key +
                        "' out of uint32 range");
        out = static_cast<uint32_t>(v);
        return true;
    }

    bool
    str(const JsonValue &obj, const char *key, std::string &out)
    {
        const JsonValue *v = obj.find(key);
        if (!v || v->kind != JsonValue::Kind::String)
            return fail(std::string("missing string '") + key + "'");
        out = v->text;
        return true;
    }

    const JsonValue *
    object(const JsonValue &obj, const char *key)
    {
        const JsonValue *v = obj.find(key);
        if (!v || v->kind != JsonValue::Kind::Object) {
            fail(std::string("missing object '") + key + "'");
            return nullptr;
        }
        return v;
    }
};

bool
parseCache(Extract &x, const JsonValue &parent, const char *name,
           uarch::CacheStats &out)
{
    const JsonValue *c = x.object(parent, name);
    if (!c)
        return false;
    return x.u64(*c, "accesses", out.accesses) &&
           x.u64(*c, "misses", out.misses);
}

} // namespace

std::string
parseStatsJson(const std::string &line, ParsedStats &out)
{
    JsonValue root;
    if (std::string err = DomParser(line).run(root); !err.empty())
        return err;
    if (root.kind != JsonValue::Kind::Object)
        return "top-level value is not an object";

    Extract x;
    out = ParsedStats{};
    x.str(root, "workload", out.meta.workload);
    x.str(root, "config", out.meta.config);
    x.str(root, "selector", out.meta.selector);
    if (!x.error.empty())
        return x.error;

    // errorJson records carry "error" instead of the counters.
    if (const JsonValue *e = root.find("error")) {
        if (e->kind != JsonValue::Kind::String)
            return "'error' is not a string";
        out.isError = true;
        out.error = e->text;
        if (root.find("errorClass")) {
            uint64_t sig = 0, attempts = 1;
            x.str(root, "errorClass", out.detail.cls);
            x.u64(root, "signal", sig);
            x.u64(root, "lastCycle", out.detail.lastCycle);
            x.u64(root, "attempts", attempts);
            x.str(root, "stderrTail", out.detail.stderrTail);
            out.detail.signal = static_cast<int>(sig);
            out.detail.attempts = attempts;
            if (const JsonValue *es = root.find("exitStatus");
                es && es->kind == JsonValue::Kind::Number)
                out.detail.exitStatus =
                    static_cast<int>(std::atoll(es->text.c_str()));
        }
        return x.error;
    }

    uarch::SimResult &r = out.sim;
    x.u64(root, "cycles", r.cycles);
    x.u64(root, "originalInsts", r.originalInsts);
    x.u64(root, "committedUnits", r.committedUnits);
    x.u64(root, "committedHandles", r.committedHandles);
    x.u64(root, "coveredInsts", r.coveredInsts);

    if (const JsonValue *mg = x.object(root, "minigraphs")) {
        x.u64(*mg, "instances", out.meta.mgInstances);
        x.u64(*mg, "templatesUsed", out.meta.mgTemplatesUsed);
        x.u64(*mg, "disabledExpansions", r.disabledExpansions);
        x.u64(*mg, "outliningJumps", r.outliningJumps);
        x.u64(*mg, "slackDynamicDisabledStatic",
              r.slackDynamicDisabledStatic);
    }

    if (const JsonValue *la = root.find("lossAccounting");
        la && la->kind == JsonValue::Kind::Object) {
        x.u32(*la, "commitWidth", r.accountedWidth);
        if (const JsonValue *b = x.object(*la, "buckets")) {
            for (size_t i = 0; i < uarch::kNumLossBuckets; ++i)
                x.u64(*b,
                      uarch::lossBucketName(
                          static_cast<uarch::LossBucket>(i)),
                      r.lossSlots[i]);
        }
    } else if (!la) {
        x.fail("missing 'lossAccounting'");
    }

    if (const JsonValue *mt = root.find("mgTemplates");
        mt && mt->kind == JsonValue::Kind::Array) {
        for (const JsonValue &t : mt->elements) {
            if (t.kind != JsonValue::Kind::Object)
                return "mgTemplates element is not an object";
            uarch::MgTemplateSerialStats s;
            x.u64(t, "issues", s.issues);
            x.u64(t, "extWaitCycles", s.extWaitCycles);
            x.u64(t, "intPenaltyCycles", s.intPenaltyCycles);
            r.mgTemplates.push_back(s);
            if (const JsonValue *n = t.find("name");
                n && n->kind == JsonValue::Kind::String)
                out.meta.templateNames.push_back(n->text);
        }
    } else {
        x.fail("missing 'mgTemplates'");
    }

    if (const JsonValue *st = x.object(root, "stalls")) {
        x.u64(*st, "rob", r.robStallCycles);
        x.u64(*st, "iq", r.iqStallCycles);
        x.u64(*st, "reg", r.regStallCycles);
    }

    if (const JsonValue *bl = x.object(root, "blame")) {
        x.u64(*bl, "notDispatched", r.blameNotDispatched);
        x.u64(*bl, "earliest", r.blameEarliest);
        x.u64(*bl, "srcs", r.blameSrcs);
        x.u64(*bl, "memDep", r.blameMemDep);
        x.u64(*bl, "fu", r.blameFu);
        x.u64(*bl, "replay", r.blameReplay);
        x.u64(*bl, "issued", r.blameIssued);
    }

    if (const JsonValue *bp = x.object(root, "branchPred")) {
        x.u64(*bp, "condPredictions", r.branchPred.condPredictions);
        x.u64(*bp, "condMispredicts", r.branchPred.condMispredicts);
        x.u64(*bp, "btbMisses", r.branchPred.btbMisses);
        x.u64(*bp, "rasPredictions", r.branchPred.rasPredictions);
        x.u64(*bp, "rasMispredicts", r.branchPred.rasMispredicts);
    }

    if (const JsonValue *cs = x.object(root, "caches")) {
        parseCache(x, *cs, "icache", r.icache);
        parseCache(x, *cs, "dcache", r.dcache);
        parseCache(x, *cs, "l2", r.l2);
        parseCache(x, *cs, "itlb", r.itlb);
        parseCache(x, *cs, "dtlb", r.dtlb);
    }

    if (const JsonValue *m = x.object(root, "memory")) {
        x.u64(*m, "orderViolations", r.memOrderViolations);
        x.u64(*m, "issueReplays", r.issueReplays);
        x.u64(*m, "storeSetViolations", r.storeSets.violations);
        x.u64(*m, "storeSetLoadsDeferred", r.storeSets.loadsDeferred);
    }

    if (const JsonValue *sd = x.object(root, "slackDynamic")) {
        x.u64(*sd, "serializedIssues", r.slackDynamic.serializedIssues);
        x.u64(*sd, "harmfulEvents", r.slackDynamic.harmfulEvents);
        x.u64(*sd, "disables", r.slackDynamic.disables);
        x.u64(*sd, "resurrections", r.slackDynamic.resurrections);
    }

    return x.error;
}

} // namespace mg::trace
