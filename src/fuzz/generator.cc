#include "fuzz/generator.h"

#include <array>
#include <vector>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace mg::fuzz
{

namespace
{

// Register discipline (see generator.h): value registers hold the
// data the program computes on; scratch registers hold masked array
// indices and guarded divisors; counter registers belong to counted
// loops and are never written by anything else, which is the whole
// termination argument.
constexpr unsigned kFirstValueReg = 1, kLastValueReg = 16;
constexpr unsigned kFirstScratchReg = 17, kLastScratchReg = 20;
constexpr unsigned kFirstCounterReg = 21, kLastCounterReg = 24;

constexpr unsigned kNumArrays = 4;
constexpr unsigned kArrayBytes = 64;

/** Emission state threaded through the segment emitters. */
struct Gen
{
    Rng rng;
    std::string text;
    unsigned nextLabel = 0;
    unsigned nextCounter = kFirstCounterReg;

    explicit Gen(uint64_t seed) : rng(seed ? seed : 1) {}

    unsigned valueReg() { return kFirstValueReg +
        static_cast<unsigned>(rng.below(kLastValueReg - kFirstValueReg + 1)); }
    unsigned scratchReg() { return kFirstScratchReg +
        static_cast<unsigned>(rng.below(kLastScratchReg - kFirstScratchReg + 1)); }

    std::string label() { return "L" + std::to_string(nextLabel++); }

    void
    emit(const std::string &line)
    {
        text += "        ";
        text += line;
        text += '\n';
    }

    void emitLabel(const std::string &l) { text += l + ":\n"; }
};

std::string
reg(unsigned r)
{
    return "r" + std::to_string(r);
}

/** One random 2-source ALU op writing `rd`. */
void
emitAluOp(Gen &g, unsigned rd, unsigned ra, unsigned rb)
{
    // Weighted toward the simple ALU ops the selectors aggregate;
    // shifts are safe unguarded (the functional model masks the shift
    // amount), division gets an odd divisor.
    switch (g.rng.below(12)) {
    case 0: g.emit("add  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 1: g.emit("sub  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 2: g.emit("and  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 3: g.emit("or   " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 4: g.emit("xor  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 5: g.emit("sll  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 6: g.emit("srl  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 7: g.emit("slt  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 8: g.emit("sltu " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 9: g.emit("mul  " + reg(rd) + ", " + reg(ra) + ", " + reg(rb)); break;
    case 10: {
        unsigned t = g.scratchReg();
        g.emit("ori  " + reg(t) + ", " + reg(rb) + ", 1");
        g.emit((g.rng.chance(0.5) ? "div  " : "rem  ") + reg(rd) + ", " +
               reg(ra) + ", " + reg(t));
        break;
    }
    default:
        g.emit("addi " + reg(rd) + ", " + reg(ra) + ", " +
               std::to_string(g.rng.range(-64, 64)));
        break;
    }
}

/**
 * Long dependence chain: each op consumes the previous result, the
 * shape that maximizes mini-graph internal serialization.
 */
void
emitDepChain(Gen &g)
{
    unsigned acc = g.valueReg();
    unsigned len = 4 + static_cast<unsigned>(g.rng.below(13));
    for (unsigned i = 0; i < len; ++i)
        emitAluOp(g, acc, acc, g.valueReg());
}

/**
 * Register-pressure DAG: produce a wave of independent values, then
 * reduce them pairwise — wide live ranges that stress selection on a
 * reduced register file.
 */
void
emitPressureDag(Gen &g)
{
    unsigned width = 6 + static_cast<unsigned>(g.rng.below(7));
    std::vector<unsigned> live;
    for (unsigned i = 0; i < width; ++i) {
        unsigned rd = g.valueReg();
        emitAluOp(g, rd, g.valueReg(), g.valueReg());
        live.push_back(rd);
    }
    while (live.size() > 1) {
        unsigned a = live.back();
        live.pop_back();
        unsigned b = live.back();
        emitAluOp(g, b, b, a);
    }
}

/**
 * Memory traffic with deliberate aliasing: masked indices into one of
 * the arrays, a store followed by loads that may hit the same slot
 * (store-to-load forwarding and memory-order speculation fodder).
 */
void
emitMemAlias(Gen &g)
{
    unsigned arr = static_cast<unsigned>(g.rng.below(kNumArrays));
    std::string name = "a" + std::to_string(arr);

    struct Access { const char *load, *store; unsigned mask; };
    // Mask keeps index + access size inside kArrayBytes, aligned.
    static constexpr Access kAccess[] = {
        {"ld", "sd", 0x38}, {"lw", "sw", 0x3c},
        {"lh", "sh", 0x3e}, {"lb", "sb", 0x3f},
    };
    const Access &acc = kAccess[g.rng.below(4)];

    unsigned idx = g.scratchReg();
    unsigned ops = 2 + static_cast<unsigned>(g.rng.below(4));
    for (unsigned i = 0; i < ops; ++i) {
        g.emit("andi " + reg(idx) + ", " + reg(g.valueReg()) + ", " +
               std::to_string(acc.mask));
        if (g.rng.chance(0.5)) {
            g.emit(std::string(acc.store) + "   " + reg(g.valueReg()) +
                   ", " + name + "(" + reg(idx) + ")");
        } else {
            g.emit(std::string(acc.load) + "   " + reg(g.valueReg()) +
                   ", " + name + "(" + reg(idx) + ")");
        }
    }
}

void emitSegment(Gen &g, bool allowLoop);

/** Forward if/else diamond (or a single skipped arm). */
void
emitDiamond(Gen &g)
{
    unsigned a = g.valueReg(), b = g.valueReg();
    std::string join = g.label();

    static constexpr const char *kBranches[] = {"beq", "bne", "blt",
                                                "bge", "bltu", "bgeu"};
    const char *br = kBranches[g.rng.below(6)];

    if (g.rng.chance(0.5)) {
        // if/else: branch to else, then-arm, jump to join.
        std::string other = g.label();
        g.emit(std::string(br) + "  " + reg(a) + ", " + reg(b) + ", " +
               other);
        emitSegment(g, false);
        g.emit("j    " + join);
        g.emitLabel(other);
        emitSegment(g, false);
    } else {
        // if only: branch over the arm.
        g.emit(std::string(br) + "  " + reg(a) + ", " + reg(b) + ", " +
               join);
        emitSegment(g, false);
    }
    g.emitLabel(join);
}

/**
 * Counted loop: the only backward control flow the generator emits.
 * The counter register is claimed from the reserved pool for the
 * loop's whole extent, so no body instruction can clobber it.
 */
void
emitCountedLoop(Gen &g)
{
    if (g.nextCounter > kLastCounterReg) {
        emitDepChain(g); // counter pool exhausted: degrade gracefully
        return;
    }
    unsigned rc = g.nextCounter++;
    // One level of loop nesting is allowed while a counter register
    // remains for the inner loop.
    bool nest = g.rng.chance(0.3) && g.nextCounter <= kLastCounterReg;

    int64_t trips = g.rng.range(1, 6);
    std::string top = g.label();
    g.emit("li   " + reg(rc) + ", " + std::to_string(trips));
    g.emitLabel(top);
    unsigned body = 1 + static_cast<unsigned>(g.rng.below(3));
    for (unsigned i = 0; i < body; ++i)
        emitSegment(g, false);
    if (nest)
        emitCountedLoop(g);
    g.emit("addi " + reg(rc) + ", " + reg(rc) + ", -1");
    g.emit("bne  " + reg(rc) + ", r0, " + top);
    // Release our counter; a nested loop released its own on return.
    --g.nextCounter;
}

void
emitSegment(Gen &g, bool allowLoop)
{
    switch (g.rng.below(allowLoop ? 5u : 4u)) {
    case 0: emitDepChain(g); break;
    case 1: emitPressureDag(g); break;
    case 2: emitMemAlias(g); break;
    case 3: emitDiamond(g); break;
    default: emitCountedLoop(g); break;
    }
}

} // namespace

std::string
fuzzProgramName(uint64_t seed)
{
    return "fuzz-" + std::to_string(seed);
}

std::string
generateSource(const GeneratorOptions &opts)
{
    Gen g(opts.seed);
    g.text += "; generated by mgsim fuzz, seed " +
              std::to_string(opts.seed) + "\n";
    g.text += "        .data\n";
    for (unsigned a = 0; a < kNumArrays; ++a) {
        g.text += "a" + std::to_string(a) + ":";
        if (a == 0) {
            // One array starts initialized so early loads see data.
            g.text += "     .word";
            for (unsigned i = 0; i < kArrayBytes / 4; ++i)
                g.text += std::string(i ? "," : "") + " " +
                          std::to_string(g.rng.range(-1000, 1000));
            g.text += "\n";
        } else {
            g.text +=
                "     .space " + std::to_string(kArrayBytes) + "\n";
        }
    }
    // Final-value spill area for the observability epilogue.
    g.text += "out:    .space " +
              std::to_string((kLastValueReg - kFirstValueReg + 1) * 8) +
              "\n";
    g.text += "        .text\n";
    g.text += "main:\n";
    for (unsigned r = kFirstValueReg; r <= kLastValueReg; ++r)
        g.emit("li   " + reg(r) + ", " +
               std::to_string(g.rng.range(-32768, 32767)));

    unsigned segs =
        opts.minSegments +
        static_cast<unsigned>(g.rng.below(
            opts.maxSegments - opts.minSegments + 1));
    for (unsigned s = 0; s < segs; ++s)
        emitSegment(g, true);

    // Observability epilogue: spill every value register to the
    // `out` area so the oracle's memory digest sees each final live
    // value individually.  Mini-graph packing may legally elide dead
    // register writes, so the register file is not comparable on
    // enabled-handle runs — memory is, and this makes memory carry
    // everything the program computed.
    for (unsigned r = kFirstValueReg; r <= kLastValueReg; ++r) {
        g.emit("li   " + reg(kFirstScratchReg) + ", " +
               std::to_string((r - kFirstValueReg) * 8));
        g.emit("sd   " + reg(r) + ", out(" + reg(kFirstScratchReg) +
               ")");
    }
    g.emit("halt");
    return g.text;
}

GeneratedProgram
generateProgram(const GeneratorOptions &opts)
{
    GeneratedProgram out;
    out.seed = opts.seed;
    out.source = generateSource(opts);
    assembler::AssembleOptions aopts;
    aopts.name = fuzzProgramName(opts.seed);
    aopts.memSize = opts.memSize;
    out.program = assembler::assemble(out.source, aopts);
    return out;
}

} // namespace mg::fuzz
