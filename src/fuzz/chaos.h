/**
 * @file
 * Chaos mode: randomized end-to-end fault schedules over the DSE
 * service (docs/FUZZING.md).
 *
 * Where the oracle (fuzz/oracle.h) fuzzes the *simulator*, chaos mode
 * fuzzes the *robustness substrate around it*: fault injection
 * (MG_FAULTS), fork isolation, journal resume, and the
 * content-addressed result store are composed into randomized
 * kill/corrupt/retry schedules against one fixed reference sweep.
 *
 * Each schedule, from a seed:
 *
 *  1. optionally pre-populates the result store with one shard of the
 *     sweep (so the final pass mixes hits and misses);
 *  2. corrupts a random subset of store entries (truncation, bit
 *     flips, appended garbage, emptying — the quarantine signatures);
 *  3. seeds the journal with garbage lines and a torn tail (the
 *     power-loss signature the loader must skip);
 *  4. runs the full sweep isolated, with a transient crash/OOM fault
 *     armed for each run's first attempt, retries enabled, and
 *     journal resume on.
 *
 * Invariant: whatever the schedule did, the final sweep document must
 * be byte-identical to the undisturbed reference document, the sweep
 * must report zero failed points, and a corrupt store entry must
 * never have been served (byte-identity is the proof; the store's
 * quarantine counters are cross-checked on top).
 */

#ifndef MG_FUZZ_CHAOS_H
#define MG_FUZZ_CHAOS_H

#include <cstdint>
#include <string>
#include <vector>

namespace mg::fuzz
{

/** Knobs for one chaos campaign. */
struct ChaosOptions
{
    /** Seed for the schedule stream (schedule i uses seed+i). */
    uint64_t seed = 1;

    /** Randomized schedules to run. */
    unsigned schedules = 5;

    /**
     * Scratch directory for stores and journals; created if missing,
     * reused (and scribbled over) if present.
     */
    std::string workDir = "chaos-work";

    /** Worker threads for each sweep (0 = BatchOptions default). */
    unsigned jobs = 1;
};

/** Outcome of a chaos campaign. */
struct ChaosResult
{
    /** Fatal setup problem ("" = the campaign ran). */
    std::string error;

    unsigned schedules = 0;      ///< schedules executed
    unsigned faultsInjected = 0; ///< schedules that armed a fault
    unsigned resumes = 0;        ///< schedules that pre-seeded a journal
    uint64_t corrupted = 0;      ///< store files corrupted in total

    /** One line per violated invariant (empty = all held). */
    std::vector<std::string> failures;

    bool ok() const { return error.empty() && failures.empty(); }
};

/** Run a chaos campaign. */
ChaosResult runChaos(const ChaosOptions &opts);

/** One deterministic JSON summary line for a campaign. */
std::string chaosJson(const ChaosResult &result, uint64_t seed);

} // namespace mg::fuzz

#endif // MG_FUZZ_CHAOS_H
