/**
 * @file
 * Seeded random MG-RISC program generator for differential fuzzing
 * (docs/FUZZING.md).
 *
 * The generator emits assembly *source*, not decoded instructions, so
 * every fuzz program flows through the real assembler (two-pass label
 * resolution, pseudo-op expansion, data-segment layout) exactly like a
 * hand-written workload — and so a failing program shrinks (and gets
 * committed as a regression test) as ordinary readable assembly.
 *
 * Programs are always-terminating *by construction*, never by
 * analysis:
 *
 *  - the only backward branches are counted loops
 *    (`li rc, T; ...; addi rc, rc, -1; bne rc, r0, top`) whose
 *    counter registers come from a reserved set no generated body
 *    instruction ever writes;
 *  - every other branch is strictly forward (if/else diamonds);
 *  - every load/store index is masked (`andi`) into a fixed-size
 *    `.data` array before use, so no access depends on unconstrained
 *    values;
 *  - every DIV/REM divisor is forced odd (`ori rt, rs, 1`), so it is
 *    never zero.
 *
 * Within those guardrails the generator aims at what the mini-graph
 * selectors care about: long dependence chains, register-pressure
 * DAGs, store-to-load aliasing through one array, and branchy CFGs —
 * the shapes that decide serialization and coverage.
 *
 * Every program ends with an observability epilogue that spills each
 * value register to a dedicated `out` array: mini-graph packing may
 * legally elide *dead* register writes, so the oracle compares
 * enabled-handle runs on memory, and the epilogue makes memory carry
 * every final live value.
 *
 * Determinism: every random decision flows through one mg::Rng seeded
 * from GeneratorOptions::seed, so a seed reproduces its program
 * bit-for-bit on any host.
 */

#ifndef MG_FUZZ_GENERATOR_H
#define MG_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>

#include "assembler/program.h"

namespace mg::fuzz
{

/** Knobs for one generated program. */
struct GeneratorOptions
{
    /** Seed: same seed, same program, bit for bit. */
    uint64_t seed = 1;

    /** Top-level code segments (loops count as one). */
    unsigned minSegments = 4;
    unsigned maxSegments = 10;

    /**
     * Flat memory size for the assembled program.  Must clear the
     * assembler's default 64KB data base plus the arrays and the
     * stack; 128KB keeps the simulated Memory small.
     */
    uint64_t memSize = 1ull << 17;
};

/** One generated program: the source and its assembled form. */
struct GeneratedProgram
{
    uint64_t seed = 0;
    std::string source;
    assembler::Program program;
};

/** Generate assembly source only (the shrinker re-enters here). */
std::string generateSource(const GeneratorOptions &opts);

/**
 * Generate and assemble one program.  Assembly cannot fail: the
 * generator emits only syntax it knows the assembler accepts (and the
 * fuzz tests prove that over many seeds).
 */
GeneratedProgram generateProgram(const GeneratorOptions &opts);

/** Program name for a seed ("fuzz-<seed>"). */
std::string fuzzProgramName(uint64_t seed);

} // namespace mg::fuzz

#endif // MG_FUZZ_GENERATOR_H
