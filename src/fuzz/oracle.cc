#include "fuzz/oracle.h"

#include <sys/wait.h>
#include <unistd.h>

#include <fcntl.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "check/mg_lint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "minigraph/candidate.h"
#include "minigraph/rewriter.h"
#include "minigraph/selection.h"
#include "profile/exec_counts.h"
#include "profile/slack_profile.h"
#include "sim/experiment.h"
#include "trace/stats_json.h"
#include "uarch/core.h"

namespace mg::fuzz
{

namespace
{

/** FNV-1a over the whole data memory, 8 bytes at a time. */
uint64_t
memoryDigest(const uarch::Memory &mem)
{
    uint64_t h = 14695981039346656037ull;
    for (uint64_t addr = 0; addr + 8 <= mem.size(); addr += 8) {
        uint64_t v = mem.read(addr, 8);
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/** What of the final state a comparison is entitled to check. */
struct CompareParts
{
    bool regs = true;  ///< false where dead-write elision is legal
    bool insts = true; ///< false where synthetic jumps skew the count
};

/** First difference between two states, or "" if equal. */
std::string
diffStates(const ArchState &want, const ArchState &got,
           CompareParts parts)
{
    if (parts.regs) {
        for (unsigned r = 0; r < 32; ++r) {
            if (want.regs[r] != got.regs[r])
                return strprintf("r%u: want %llu, got %llu", r,
                                 static_cast<unsigned long long>(
                                     want.regs[r]),
                                 static_cast<unsigned long long>(
                                     got.regs[r]));
        }
    }
    if (want.memDigest != got.memDigest)
        return strprintf("memory digest: want %016llx, got %016llx",
                         static_cast<unsigned long long>(
                             want.memDigest),
                         static_cast<unsigned long long>(
                             got.memDigest));
    if (parts.insts && want.instCount != got.instCount)
        return strprintf("inst count: want %llu, got %llu",
                         static_cast<unsigned long long>(
                             want.instCount),
                         static_cast<unsigned long long>(
                             got.instCount));
    return "";
}

/**
 * Step a functional core up to `max_steps` without tripping run()'s
 * internal step-cap assert (nontermination must be a verdict, not a
 * panic).
 * @return true if the core halted
 */
bool
boundedRun(uarch::FunctionalCore &core, uint64_t max_steps)
{
    for (uint64_t s = 0; !core.halted() && s < max_steps; ++s)
        core.step();
    return core.halted();
}

/**
 * Functionally execute a (possibly rewritten) binary and compare its
 * final state against the ground truth.
 */
void
compareFunctional(const assembler::Program &prog,
                  const isa::MgBinaryInfo *info, bool disable_all,
                  const ArchState &truth, const std::string &selector,
                  const char *kind, CompareParts parts,
                  uint64_t max_steps,
                  std::vector<OracleFailure> &failures)
{
    uarch::FunctionalCore core(prog, info);
    if (disable_all)
        core.setDisableQuery([](isa::Addr) { return true; });
    if (!boundedRun(core, max_steps)) {
        failures.push_back(
            {selector, "nontermination",
             strprintf("functional run (%s) did not halt within "
                       "%llu steps",
                       kind,
                       static_cast<unsigned long long>(max_steps))});
        return;
    }
    if (std::string diff =
            diffStates(truth, captureState(core), parts);
        !diff.empty())
        failures.push_back({selector, kind, diff});
}

} // namespace

const std::vector<minigraph::SelectorKind> &
defaultOracleSelectors()
{
    using minigraph::SelectorKind;
    // One selector per family, including the rewritten-code-heavy
    // Slack-Dynamic (outlined expansion at run time) and the
    // analyzer-driven Slack-Static the issue calls out.
    static const std::vector<SelectorKind> kDefault = {
        SelectorKind::StructAll,    SelectorKind::StructNone,
        SelectorKind::StructBounded, SelectorKind::SlackProfile,
        SelectorKind::SlackDynamic,  SelectorKind::SlackStatic,
    };
    return kDefault;
}

uarch::CoreConfig
defaultOracleConfig()
{
    uarch::CoreConfig cfg = uarch::reducedConfig();
    cfg.checkLevel = uarch::CheckLevel::Full;
    return cfg;
}

ArchState
captureState(const uarch::FunctionalCore &core)
{
    ArchState s;
    for (unsigned r = 0; r < 32; ++r)
        s.regs[r] = core.reg(r);
    s.memDigest = memoryDigest(core.memory());
    s.instCount = core.instCount();
    return s;
}

bool
sabotageOutlinedImmediate(assembler::Program &prog,
                          const isa::MgBinaryInfo &info)
{
    for (isa::Addr pc = 0; pc < prog.code.size(); ++pc) {
        if (!info.outlinedBodyPcs.count(pc) ||
            info.outliningJumpPcs.count(pc))
            continue;
        const isa::Format f = isa::opInfo(prog.code[pc].op).format;
        if (f != isa::Format::RRI && f != isa::Format::RI &&
            f != isa::Format::Load && f != isa::Format::Store)
            continue;
        prog.code[pc].imm += 1;
        return true;
    }
    return false;
}

OracleVerdict
checkProgram(const assembler::Program &prog, const OracleOptions &opts)
{
    OracleVerdict verdict;

    // 1. Ground truth: the original program, functionally executed.
    uarch::FunctionalCore golden(prog);
    if (!boundedRun(golden, opts.maxSteps)) {
        verdict.failures.push_back(
            {"", "nontermination",
             strprintf("original program did not halt within %llu "
                       "steps",
                       static_cast<unsigned long long>(
                           opts.maxSteps))});
        return verdict;
    }
    const ArchState truth = captureState(golden);
    verdict.instCount = truth.instCount;

    // Shared one-run timing checker (baseline and every selector).
    auto checkTiming = [&](const uarch::CoreConfig &cfg,
                           const assembler::Program &binary,
                           const isa::MgBinaryInfo *info,
                           const std::string &selector) {
        std::optional<uarch::SimResult> res;
        try {
            uarch::Core core(cfg, binary, info);
            res = core.run();
            if (!core.architecturalState().halted()) {
                verdict.failures.push_back(
                    {selector, "nontermination",
                     "timing run hit the cycle limit"});
                return;
            }
            // Memory digest only: the timing oracle executes the
            // rewritten binary (dead-write elision) with dynamic
            // disables (synthetic jumps), so neither the register
            // file nor the raw executed-instruction count is
            // comparable; originalInsts below carries the count check.
            if (std::string diff = diffStates(
                    truth, captureState(core.architecturalState()),
                    {/*regs=*/false, /*insts=*/false});
                !diff.empty())
                verdict.failures.push_back(
                    {selector, "timing-arch", diff});
        } catch (const CheckError &e) {
            verdict.failures.push_back({selector, "check", e.what()});
            return;
        } catch (const std::exception &e) {
            verdict.failures.push_back(
                {selector, "exception", e.what()});
            return;
        }
        if (res->originalInsts != truth.instCount)
            verdict.failures.push_back(
                {selector, "inst-count",
                 strprintf("committed %llu original instructions, "
                           "ground truth %llu",
                           static_cast<unsigned long long>(
                               res->originalInsts),
                           static_cast<unsigned long long>(
                               truth.instCount))});
        if (res->accountedWidth && res->lossSum() != res->lostSlots())
            verdict.failures.push_back(
                {selector, "accounting",
                 strprintf("loss buckets sum to %llu, lost slots %llu",
                           static_cast<unsigned long long>(
                               res->lossSum()),
                           static_cast<unsigned long long>(
                               res->lostSlots()))});
    };

    // 2. Baseline timing run (no mini-graphs).
    checkTiming(opts.config, prog, nullptr, "none");

    // 3. Every selector: select, rewrite, (sabotage,) lint, execute.
    auto pool = minigraph::enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog, opts.maxSteps);
    std::optional<profile::SlackProfileData> prof;

    for (minigraph::SelectorKind kind : opts.selectors) {
        const std::string selector = minigraph::nameOf(kind);
        try {
            const profile::SlackProfileData *p = nullptr;
            if (minigraph::selectorNeedsProfile(kind)) {
                if (!prof)
                    prof = profile::profileProgram(prog, opts.config);
                p = &*prof;
            }
            auto filtered =
                minigraph::filterPool(pool, kind, prog, p);
            auto sel = minigraph::selectGreedy(filtered, counts,
                                               opts.templateBudget);
            auto rw = minigraph::rewrite(prog, sel.chosen);
            if (opts.sabotage)
                opts.sabotage(rw.program, rw.info);

            check::LintReport lint = check::lintRewrite(
                prog, sel.chosen, rw.program, rw.info);
            if (!lint.clean())
                verdict.failures.push_back(
                    {selector, "lint",
                     strprintf("%zu finding(s): %s",
                               lint.findings.size(),
                               lint.findings.front().message.c_str())});

            // Enabled handles execute template semantics: dead
            // interior register writes are legally elided, so memory
            // and instruction count are the comparable state.
            compareFunctional(rw.program, &rw.info,
                              /*disable_all=*/false, truth, selector,
                              "functional-enabled",
                              {/*regs=*/false, /*insts=*/true},
                              opts.maxSteps, verdict.failures);
            // Disabled handles expand to the outlined original
            // singletons: everything must match (the synthetic
            // outlining jumps are uncounted by design).
            compareFunctional(rw.program, &rw.info,
                              /*disable_all=*/true, truth, selector,
                              "functional-disabled",
                              {/*regs=*/true, /*insts=*/true},
                              opts.maxSteps, verdict.failures);

            checkTiming(sim::configForSelector(opts.config, kind),
                        rw.program, &rw.info, selector);
        } catch (const CheckError &e) {
            verdict.failures.push_back({selector, "check", e.what()});
        } catch (const std::exception &e) {
            verdict.failures.push_back(
                {selector, "exception", e.what()});
        }
    }
    return verdict;
}

OracleVerdict
checkProgramIsolated(const assembler::Program &prog,
                     const OracleOptions &opts)
{
    return runVerdictIsolated(
        [&] { return checkProgram(prog, opts); });
}

OracleVerdict
runVerdictIsolated(const std::function<OracleVerdict()> &body)
{
    int fds[2];
    if (pipe(fds) != 0) {
        OracleVerdict v;
        v.failures.push_back(
            {"", "crash",
             strprintf("pipe() failed: %s", std::strerror(errno))});
        return v;
    }

    pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        OracleVerdict v;
        v.failures.push_back(
            {"", "crash",
             strprintf("fork() failed: %s", std::strerror(errno))});
        return v;
    }

    if (pid == 0) {
        // Child: verdict out through the pipe, one record per line
        // ('\x1f' separates fields; newlines in details flattened).
        // Panic/fatal logs from a doomed candidate are noise — send
        // them to /dev/null.
        close(fds[0]);
        int devnull = open("/dev/null", O_WRONLY);
        if (devnull >= 0)
            dup2(devnull, STDERR_FILENO);
        OracleVerdict v = body();
        std::string wire =
            "insts " + std::to_string(v.instCount) + "\n";
        for (const OracleFailure &f : v.failures) {
            std::string detail = f.detail;
            for (char &c : detail)
                if (c == '\n' || c == '\x1f')
                    c = ' ';
            wire += "fail " + f.selector + "\x1f" + f.kind + "\x1f" +
                    detail + "\n";
        }
        size_t off = 0;
        while (off < wire.size()) {
            ssize_t n =
                write(fds[1], wire.data() + off, wire.size() - off);
            if (n <= 0)
                break;
            off += static_cast<size_t>(n);
        }
        close(fds[1]);
        _exit(0);
    }

    // Parent: drain, reap, decode.
    close(fds[1]);
    std::string wire;
    char buf[4096];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof buf)) > 0)
        wire.append(buf, static_cast<size_t>(n));
    close(fds[0]);

    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    OracleVerdict verdict;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        verdict.failures.push_back(
            {"", "crash",
             WIFSIGNALED(status)
                 ? strprintf("simulator aborted (signal %d)",
                             WTERMSIG(status))
                 : strprintf("oracle child exited with status %d",
                             WIFEXITED(status) ? WEXITSTATUS(status)
                                               : -1)});
        return verdict;
    }
    size_t pos = 0;
    while (pos < wire.size()) {
        size_t nl = wire.find('\n', pos);
        if (nl == std::string::npos)
            break;
        std::string line = wire.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.rfind("insts ", 0) == 0) {
            verdict.instCount = std::strtoull(line.c_str() + 6,
                                              nullptr, 10);
        } else if (line.rfind("fail ", 0) == 0) {
            std::string rest = line.substr(5);
            size_t a = rest.find('\x1f');
            size_t b = rest.find('\x1f', a + 1);
            if (a == std::string::npos || b == std::string::npos)
                continue;
            verdict.failures.push_back(
                {rest.substr(0, a), rest.substr(a + 1, b - a - 1),
                 rest.substr(b + 1)});
        }
    }
    return verdict;
}

std::string
verdictJson(const std::string &program, uint64_t seed,
            const OracleVerdict &verdict)
{
    std::string out = "{\"program\":\"" + trace::jsonEscape(program) +
                      "\",\"seed\":" + std::to_string(seed) +
                      ",\"ok\":" + (verdict.ok() ? "true" : "false") +
                      ",\"insts\":" +
                      std::to_string(verdict.instCount) +
                      ",\"failures\":[";
    for (size_t i = 0; i < verdict.failures.size(); ++i) {
        const OracleFailure &f = verdict.failures[i];
        if (i)
            out += ',';
        out += "{\"selector\":\"" + trace::jsonEscape(f.selector) +
               "\",\"kind\":\"" + trace::jsonEscape(f.kind) +
               "\",\"detail\":\"" + trace::jsonEscape(f.detail) +
               "\"}";
    }
    out += "]}";
    return out;
}

} // namespace mg::fuzz
