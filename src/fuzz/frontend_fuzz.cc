#include "fuzz/frontend_fuzz.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "frontend/interp.h"
#include "uarch/functional.h"

namespace mg::fuzz
{

namespace
{

/**
 * Compare the compiled program's final globals against the reference
 * interpreter's, one failure per diverging global (first diverging
 * element each).  Addresses come from the assembler's data labels, so
 * this also exercises the emitted data layout.
 */
void
diffGlobals(const frontend::CProgram &ast,
            const assembler::Program &prog,
            const uarch::FunctionalCore &core,
            const std::vector<std::vector<uint64_t>> &want,
            std::vector<OracleFailure> &failures)
{
    for (size_t gi = 0; gi < ast.globals.size(); ++gi) {
        const frontend::GlobalDecl &g = ast.globals[gi];
        const uint64_t base = prog.dataLabels.at(g.name);
        const size_t n = g.arraySize == 0 ? 1 : g.arraySize;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t got = core.memory().read(base + 8 * i, 8);
            if (got == want[gi][i])
                continue;
            std::string slot =
                g.arraySize == 0
                    ? g.name
                    : strprintf("%s[%zu]", g.name.c_str(), i);
            failures.push_back(
                {"", "frontend-diff",
                 strprintf("%s: interpreter %llu (0x%llx), compiled "
                           "%llu (0x%llx)",
                           slot.c_str(),
                           static_cast<unsigned long long>(want[gi][i]),
                           static_cast<unsigned long long>(want[gi][i]),
                           static_cast<unsigned long long>(got),
                           static_cast<unsigned long long>(got))});
            break; // first diverging element per global is enough
        }
    }
}

} // namespace

OracleVerdict
checkCSource(const std::string &source,
             const FrontendCheckOptions &opts)
{
    OracleVerdict verdict;

    frontend::CompileResult comp =
        frontend::compile(source, opts.compile);
    if (!comp.ok) {
        verdict.failures.push_back({"", "compile", comp.error});
        return verdict;
    }

    frontend::InterpOptions iopts;
    iopts.maxSteps = opts.oracle.maxSteps;
    iopts.globalOverrides = opts.compile.globalOverrides;
    frontend::InterpResult ref = frontend::interpret(*comp.ast, iopts);
    if (!ref.ok) {
        verdict.failures.push_back({"", "interp", ref.error});
        return verdict;
    }

    assembler::Program prog;
    try {
        prog = frontend::assemble(comp, opts.compile);
    } catch (const std::exception &e) {
        verdict.failures.push_back({"", "compile", e.what()});
        return verdict;
    }

    // Level 1: compiled execution vs the AST interpreter.
    uarch::FunctionalCore core(prog);
    for (uint64_t s = 0; !core.halted() && s < opts.oracle.maxSteps;
         ++s)
        core.step();
    if (!core.halted()) {
        verdict.failures.push_back(
            {"", "nontermination",
             strprintf("compiled program did not halt within %llu "
                       "steps (interpreter finished in %llu)",
                       static_cast<unsigned long long>(
                           opts.oracle.maxSteps),
                       static_cast<unsigned long long>(ref.steps))});
        return verdict;
    }
    diffGlobals(*comp.ast, prog, core, ref.globals, verdict.failures);

    // Level 2: the full architectural oracle on the assembled binary.
    OracleVerdict oracle = checkProgram(prog, opts.oracle);
    verdict.instCount = oracle.instCount;
    for (OracleFailure &f : oracle.failures)
        verdict.failures.push_back(std::move(f));
    return verdict;
}

OracleVerdict
checkCSourceIsolated(const std::string &source,
                     const FrontendCheckOptions &opts)
{
    return runVerdictIsolated(
        [&] { return checkCSource(source, opts); });
}

ShrinkResult
shrinkCSource(const std::string &source,
              const FrontendCheckOptions &opts)
{
    ShrinkResult result;
    result.source = source;

    // "Still reproduces" means a real failure: a frontend divergence
    // or any oracle finding.  Degenerate candidate breakage —
    // compile/assemble errors, interpreter faults, child crashes,
    // nontermination — is rejected, so line deletion cannot walk away
    // from the bug toward a trivially broken program.
    auto realFailure = [](const OracleVerdict &v) {
        for (const OracleFailure &f : v.failures) {
            if (f.kind == "compile" || f.kind == "interp" ||
                f.kind == "crash" || f.kind == "nontermination")
                continue;
            return true;
        }
        return false;
    };
    auto fails = [&](const std::vector<std::string> &lines,
                     OracleVerdict &verdict_out) {
        ++result.trials;
        OracleVerdict v = checkCSourceIsolated(joinLines(lines), opts);
        if (!realFailure(v))
            return false;
        verdict_out = std::move(v);
        return true;
    };

    std::vector<std::string> best = splitLines(source);
    if (!fails(best, result.verdict))
        return result; // does not reproduce: hand the input back
    result.reproduced = true;

    best = ddminLines(std::move(best),
                      [&](const std::vector<std::string> &candidate) {
                          OracleVerdict v;
                          if (!fails(candidate, v))
                              return false;
                          result.verdict = std::move(v);
                          return true;
                      });

    result.source = joinLines(best);
    // Static instruction count of the minimized program (a
    // reproducing result always compiles: the predicate required it).
    frontend::CompileResult comp =
        frontend::compile(result.source, opts.compile);
    if (comp.ok) {
        try {
            result.instructions =
                frontend::assemble(comp, opts.compile).size();
        } catch (const std::exception &) {
        }
    }
    return result;
}

std::string
reproCSource(const ShrinkResult &result, uint64_t seed)
{
    std::string out = "// mgsim fuzz --frontend repro, seed " +
                      std::to_string(seed) + "\n";
    if (!result.verdict.failures.empty()) {
        const OracleFailure &f = result.verdict.failures.front();
        out += "// failure: kind=" + f.kind +
               (f.selector.empty() ? std::string()
                                   : " selector=" + f.selector) +
               "\n";
        out += "//   " + f.detail + "\n";
    }
    out += "// " + std::to_string(result.instructions) +
           " instructions after " + std::to_string(result.trials) +
           " shrink trials\n";
    out += result.source;
    return out;
}

} // namespace mg::fuzz
