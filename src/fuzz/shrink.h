/**
 * @file
 * Automatic shrinking of failing fuzz programs (docs/FUZZING.md).
 *
 * Delta debugging (ddmin) over assembly source *lines*: repeatedly try
 * removing chunks of lines, keeping any removal after which the
 * program still (a) assembles and (b) fails the differential oracle.
 * The result is a local minimum — removing any single remaining line
 * either breaks assembly or makes the failure disappear — rendered as
 * ready-to-commit assembly with the failure recorded in header
 * comments.
 *
 * The predicate is "fails differentially for any reason", not "fails
 * identically": pinning the exact failure makes shrinking brittle (a
 * smaller program often trips the *same bug* through a different
 * selector or bucket), and any differentially failing program is
 * worth a repro.  Program-level breakage — the candidate itself
 * crashes or never halts — is rejected, so line deletion cannot walk
 * away from the bug toward a trivially broken program.  Candidates
 * execute in a forked child (fuzz::checkProgramIsolated), so even
 * aborting candidates are survivable.
 */

#ifndef MG_FUZZ_SHRINK_H
#define MG_FUZZ_SHRINK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/oracle.h"

namespace mg::fuzz
{

/** Split text on '\n' (no trailing empty line). */
std::vector<std::string> splitLines(const std::string &text);

/** Join lines back into text, one '\n' after each. */
std::string joinLines(const std::vector<std::string> &lines);

/**
 * The ddmin kernel shared by the assembly and C shrinkers: starting
 * from a line set known to satisfy `fails`, repeatedly delete chunks
 * (restarting coarse after every successful deletion, halving the
 * chunk size when a pass removes nothing) until no single line can go.
 * `fails` sees each candidate and returns whether it still
 * reproduces; callers record verdicts/counters inside the closure.
 */
std::vector<std::string> ddminLines(
    std::vector<std::string> lines,
    const std::function<bool(const std::vector<std::string> &)> &fails);

/** Knobs for one shrink run. */
struct ShrinkOptions
{
    /** Oracle the predicate re-runs (match the failing trial's). */
    OracleOptions oracle;

    /** Program name used when re-assembling candidates. */
    std::string name = "shrink";

    /** memSize for re-assembly (match the generator's). */
    uint64_t memSize = 1ull << 17;
};

/** Outcome of shrinking one failing program. */
struct ShrinkResult
{
    /** Minimized source, or the input verbatim if it never failed. */
    std::string source;

    /** Instruction count of the minimized assembled program. */
    uint64_t instructions = 0;

    /** Oracle verdict of the minimized program. */
    OracleVerdict verdict;

    /** Candidate programs evaluated (assemble + oracle attempts). */
    uint64_t trials = 0;

    /** True if the input failed the oracle (shrinking happened). */
    bool reproduced = false;
};

/**
 * Shrink a failing program to a minimal failing repro.  If `source`
 * does not fail the oracle at all, returns it unchanged with
 * reproduced=false.
 */
ShrinkResult shrink(const std::string &source,
                    const ShrinkOptions &opts);

/**
 * Render a shrunk repro as a committable .s file: header comments
 * naming the seed and the first oracle failure, then the minimized
 * source.
 */
std::string reproSource(const ShrinkResult &result, uint64_t seed);

} // namespace mg::fuzz

#endif // MG_FUZZ_SHRINK_H
