/**
 * @file
 * The differential architectural oracle (docs/FUZZING.md).
 *
 * Ground truth is one uarch::FunctionalCore run of the *original*
 * program.  Everything else must agree with it:
 *
 *  - the rewritten binary, functionally executed with every handle
 *    *enabled* (template semantics): memory digest and committed
 *    original-instruction count.  The register file is deliberately
 *    excluded here — mini-graph packing legally elides *dead*
 *    interior register writes (a template architecturally writes only
 *    its single live output), so dead registers may differ; the
 *    generator spills every value register to memory before halting
 *    precisely so that all live values still land in the digest;
 *  - the rewritten binary, functionally executed with every handle
 *    *disabled* (outlined singleton expansion — the path a
 *    Slack-Dynamic disable takes at run time): full register file,
 *    memory digest, and instruction count, since the outlined bodies
 *    are the original singletons and elide nothing;
 *  - the timing core under each selector at CheckLevel::Full, whose
 *    fetch-driving oracle's final state is the committed
 *    architectural state (Core::architecturalState()): memory digest,
 *    plus committed-original-instruction-count equality from the
 *    SimResult.
 *
 * On top of the state equalities the oracle asserts the PR-3
 * loss-bucket accounting identity (sum(buckets) ==
 * commitWidth*cycles - committedUnits), mg_lint cleanliness of every
 * rewrite, and that no run raises a CheckError.
 *
 * The `sabotage` hook exists to prove the oracle has teeth: tests
 * plant a miscompile into the freshly rewritten binary (emulating a
 * rewriter bug without committing one) and require a failure verdict.
 */

#ifndef MG_FUZZ_ORACLE_H
#define MG_FUZZ_ORACLE_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "assembler/program.h"
#include "isa/minigraph_types.h"
#include "minigraph/selectors.h"
#include "uarch/config.h"
#include "uarch/functional.h"

namespace mg::fuzz
{

/** The selectors a fuzz trial runs by default (one per family). */
const std::vector<minigraph::SelectorKind> &defaultOracleSelectors();

/** reducedConfig() with the invariant audit forced to Full. */
uarch::CoreConfig defaultOracleConfig();

/** How one program gets checked. */
struct OracleOptions
{
    std::vector<minigraph::SelectorKind> selectors =
        defaultOracleSelectors();

    /** Machine for every run (checkLevel should stay Full). */
    uarch::CoreConfig config = defaultOracleConfig();

    uint32_t templateBudget = 512;

    /** Functional-execution step cap (nontermination tripwire). */
    uint64_t maxSteps = 1ull << 22;

    /**
     * Test-only miscompile planting: runs on each freshly rewritten
     * binary before it is linted and executed.
     */
    std::function<void(assembler::Program &, isa::MgBinaryInfo &)>
        sabotage;
};

/** Final architectural state of one execution. */
struct ArchState
{
    std::array<uint64_t, 32> regs{};
    uint64_t memDigest = 0; ///< FNV-1a over the whole data memory
    uint64_t instCount = 0; ///< original-program instructions

    bool operator==(const ArchState &o) const
    {
        return regs == o.regs && memDigest == o.memDigest &&
               instCount == o.instCount;
    }
};

/** Capture a halted functional core's architectural state. */
ArchState captureState(const uarch::FunctionalCore &core);

/** One oracle invariant violation. */
struct OracleFailure
{
    /** Selector registry name ("" = program-level, "none" = baseline). */
    std::string selector;

    /**
     * Which invariant: nontermination | lint | functional-enabled |
     * functional-disabled | timing-arch | inst-count | accounting |
     * check | exception.
     */
    std::string kind;

    std::string detail;
};

/** Verdict for one program. */
struct OracleVerdict
{
    std::vector<OracleFailure> failures;
    uint64_t instCount = 0; ///< ground-truth dynamic instructions

    bool ok() const { return failures.empty(); }
};

/** Run the full differential check on one program, in-process. */
OracleVerdict checkProgram(const assembler::Program &prog,
                           const OracleOptions &opts);

/**
 * checkProgram() in a forked child, so that a simulator abort
 * (mg_panic / mg_assert — out-of-range pc or memory access, a step
 * cap, an internal invariant) becomes a verdict with kind "crash"
 * instead of killing the calling process.  The shrinker depends on
 * this: deleting lines routinely produces programs that run off the
 * end or index unmasked addresses, and those candidates must be
 * *rejected*, not fatal.  The child's stderr is discarded (panic and
 * fatal logs from doomed candidates are noise).
 */
OracleVerdict checkProgramIsolated(const assembler::Program &prog,
                                   const OracleOptions &opts);

/**
 * The fork-and-wire machinery behind checkProgramIsolated, reusable
 * for any verdict-producing check (the frontend gate runs
 * checkCSource through it): run `body` in a forked child with stderr
 * silenced, ship the verdict back over a pipe, and turn a child abort
 * of any kind into a single failure with kind "crash".
 */
OracleVerdict
runVerdictIsolated(const std::function<OracleVerdict()> &body);

/**
 * One deterministic JSON line for a trial:
 * {"program":...,"seed":N,"ok":true,"insts":N,"failures":[...]}.
 */
std::string verdictJson(const std::string &program, uint64_t seed,
                        const OracleVerdict &verdict);

/**
 * The planted-miscompile sabotage used by tests and docs: bump the
 * immediate of the first outlined-body instruction that has one.
 * Enabled handles still execute correct template semantics, so only
 * the disabled/outlined path — and the linter's faithfulness check —
 * can catch it, exactly like a real outlining bug in the rewriter.
 * No-op (and reports false) if the binary has no such instruction.
 */
bool sabotageOutlinedImmediate(assembler::Program &prog,
                               const isa::MgBinaryInfo &info);

} // namespace mg::fuzz

#endif // MG_FUZZ_ORACLE_H
