#include "fuzz/chaos.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "dse/grid.h"
#include "dse/result_store.h"
#include "dse/sweep.h"
#include "sim/fault.h"
#include "trace/stats_json.h"

namespace fs = std::filesystem;

namespace mg::fuzz
{

namespace
{

/**
 * The fixed sweep every schedule replays: small enough that one
 * schedule is seconds, rich enough to exercise hits, misses, both a
 * baseline and a mini-graph selector, and two machine sizes.
 */
const char *kChaosGrid =
    "{\"base\": \"reduced\", \"workloads\": [\"crc32.0\"],"
    " \"selectors\": [\"none\", \"struct-all\"],"
    " \"configs\": [[3, 20, 96, 256], [3, 30, 144, 512]]}";

dse::SweepOptions
sweepOptions(const std::string &store_root, unsigned jobs)
{
    dse::SweepOptions opts;
    opts.storeRoot = store_root;
    // The analytic pre-filter is orthogonal to the fault machinery;
    // keep every point live so corruption has targets.
    opts.prefilter = false;
    opts.batch = sim::BatchOptions::fromEnv();
    if (jobs)
        opts.batch.jobs = jobs;
    opts.batch.json = false;
    opts.batch.progress = false;
    return opts;
}

/** Corrupt one store entry file in a randomly chosen way. */
void
corruptFile(const fs::path &path, Rng &rng)
{
    std::error_code ec;
    switch (rng.below(4)) {
    case 0: // truncate mid-entry (the torn-write signature)
        fs::resize_file(path, fs::file_size(path, ec) / 2, ec);
        break;
    case 1: { // flip one byte of the payload
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(0, std::ios::end);
        auto size = static_cast<uint64_t>(f.tellg());
        if (size == 0)
            break;
        uint64_t pos = rng.below(size);
        f.seekg(static_cast<std::streamoff>(pos));
        char c = 0;
        f.get(c);
        f.seekp(static_cast<std::streamoff>(pos));
        f.put(static_cast<char>(c ^ 0x20));
        break;
    }
    case 2: { // append garbage after the entry
        std::ofstream f(path, std::ios::app | std::ios::binary);
        f << "trailing garbage\n";
        break;
    }
    default: // empty the file entirely
        std::ofstream(path, std::ios::trunc | std::ios::binary);
        break;
    }
}

/** Corrupt a random subset of the store's object files. */
uint64_t
corruptStore(const std::string &store_root, Rng &rng)
{
    fs::path objects = fs::path(store_root) / "objects";
    std::error_code ec;
    if (!fs::exists(objects, ec))
        return 0;
    std::vector<fs::path> entries;
    for (const auto &e : fs::recursive_directory_iterator(objects, ec))
        if (e.is_regular_file())
            entries.push_back(e.path());
    uint64_t corrupted = 0;
    for (const fs::path &p : entries) {
        if (!rng.chance(0.5))
            continue;
        corruptFile(p, rng);
        ++corrupted;
    }
    return corrupted;
}

/** Seed a journal with garbage lines and a torn (no-newline) tail. */
void
seedJournal(const std::string &path, Rng &rng)
{
    std::ofstream f(path, std::ios::trunc | std::ios::binary);
    f << "not json at all\n";
    f << "{\"run\":\"half-written\",\"status\"";
    if (rng.chance(0.5))
        f << '\n'; // complete-but-malformed instead of torn
}

} // namespace

ChaosResult
runChaos(const ChaosOptions &opts)
{
    ChaosResult result;

    dse::GridSpec grid;
    if (std::string err = dse::parseGrid(kChaosGrid, grid);
        !err.empty()) {
        result.error = "chaos grid: " + err;
        return result;
    }

    std::error_code ec;
    fs::create_directories(opts.workDir, ec);
    if (ec) {
        result.error =
            "cannot create work dir " + opts.workDir + ": " + ec.message();
        return result;
    }

    // Reference: the undisturbed sweep, fresh store, no faults.
    const std::string ref_root =
        (fs::path(opts.workDir) / "ref-store").string();
    fs::remove_all(ref_root, ec);
    dse::SweepOutcome ref =
        dse::runSweep(grid, sweepOptions(ref_root, opts.jobs));
    if (!ref.ok()) {
        result.error = "reference sweep failed: " +
                       (ref.error.empty() ? "points failed" : ref.error);
        return result;
    }

    for (unsigned i = 0; i < opts.schedules; ++i) {
        Rng rng(opts.seed + i);
        const std::string tag = std::to_string(i);
        const std::string store_root =
            (fs::path(opts.workDir) / ("store-" + tag)).string();
        const std::string journal =
            (fs::path(opts.workDir) / ("journal-" + tag + ".jsonl"))
                .string();
        fs::remove_all(store_root, ec);
        fs::remove(journal, ec);

        // 1. Maybe pre-populate via one shard (mix hits and misses).
        if (rng.chance(0.7)) {
            dse::SweepOptions shard =
                sweepOptions(store_root, opts.jobs);
            shard.shardIndex = 1 + static_cast<unsigned>(rng.below(2));
            shard.shardCount = 2;
            dse::runSweep(grid, shard);
        }

        // 2. Corrupt a random subset of whatever is stored.
        result.corrupted += corruptStore(store_root, rng);

        // 3. Maybe seed the journal with garbage and a torn tail.
        bool seeded = rng.chance(0.6);
        if (seeded) {
            seedJournal(journal, rng);
            ++result.resumes;
        }

        // 4. The full sweep, isolated, with a transient first-attempt
        //    fault armed and retries to absorb it.
        dse::SweepOptions final_opts =
            sweepOptions(store_root, opts.jobs);
        final_opts.batch.isolate = true;
        final_opts.batch.retries = 2;
        final_opts.batch.backoffSec = 0.0;
        final_opts.batch.journal = journal;
        final_opts.batch.resume = true;
        if (rng.chance(0.8)) {
            sim::FaultSpec fault;
            fault.kind = rng.chance(0.5) ? sim::FaultKind::Crash
                                         : sim::FaultKind::Oom;
            fault.cycle = 1 + rng.below(64);
            fault.firstAttempts = 1;
            final_opts.batch.fault = fault;
            final_opts.batch.faultSpec =
                std::string(sim::faultKindName(fault.kind)) + "@" +
                std::to_string(fault.cycle) + ":first=1";
            ++result.faultsInjected;
        }

        dse::SweepOutcome out = dse::runSweep(grid, final_opts);
        ++result.schedules;

        if (!out.error.empty()) {
            result.failures.push_back("schedule " + tag +
                                      ": sweep error: " + out.error);
            continue;
        }
        if (out.summary.failed != 0)
            result.failures.push_back(
                "schedule " + tag + ": " +
                std::to_string(out.summary.failed) + " failed point(s)");
        if (out.doc != ref.doc)
            result.failures.push_back(
                "schedule " + tag +
                ": sweep document differs from the undisturbed "
                "reference");

        // 5. A corrupted entry must never be servable: a fresh store
        //    object verifying the directory quarantines exactly the
        //    damage and keeps the healthy (rewritten) entries.
        dse::ResultStore store;
        if (std::string err = store.open(store_root); !err.empty()) {
            result.failures.push_back("schedule " + tag +
                                      ": store reopen: " + err);
            continue;
        }
        dse::VerifyReport report = store.verify();
        if (!report.clean())
            result.failures.push_back(
                "schedule " + tag + ": " +
                std::to_string(report.bad.size()) +
                " invalid store entr(ies) after the sweep — a corrupt "
                "entry survived into the final store");
    }
    return result;
}

std::string
chaosJson(const ChaosResult &result, uint64_t seed)
{
    std::string out =
        "{\"mode\":\"chaos\",\"seed\":" + std::to_string(seed) +
        ",\"ok\":" + (result.ok() ? "true" : "false") +
        ",\"schedules\":" + std::to_string(result.schedules) +
        ",\"faults\":" + std::to_string(result.faultsInjected) +
        ",\"resumes\":" + std::to_string(result.resumes) +
        ",\"corrupted\":" + std::to_string(result.corrupted) +
        ",\"failures\":[";
    for (size_t i = 0; i < result.failures.size(); ++i) {
        if (i)
            out += ',';
        out += '"' + trace::jsonEscape(result.failures[i]) + '"';
    }
    out += "]}";
    return out;
}

} // namespace mg::fuzz
