#include "fuzz/shrink.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "assembler/assembler.h"

namespace mg::fuzz
{

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= text.size()) {
        size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            if (start < text.size())
                lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const std::string &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

std::vector<std::string>
ddminLines(
    std::vector<std::string> lines,
    const std::function<bool(const std::vector<std::string> &)> &fails)
{
    // ddmin: try removing chunks at granularity n, restarting at the
    // coarsest level after every successful removal; finish when no
    // single line can be removed.
    size_t n = 2;
    while (lines.size() >= 2) {
        bool removed = false;
        size_t chunk = (lines.size() + n - 1) / n;
        for (size_t start = 0; start < lines.size(); start += chunk) {
            std::vector<std::string> candidate;
            candidate.reserve(lines.size());
            for (size_t i = 0; i < lines.size(); ++i)
                if (i < start || i >= start + chunk)
                    candidate.push_back(lines[i]);
            if (candidate.empty())
                continue;
            if (fails(candidate)) {
                lines = std::move(candidate);
                removed = true;
                break;
            }
        }
        if (removed) {
            n = 2; // restart coarse on the smaller program
        } else if (chunk > 1) {
            n = std::min(n * 2, lines.size()); // refine
        } else {
            break; // 1-line granularity, nothing removable
        }
    }
    return lines;
}

namespace
{

/** Assemble a candidate; nullopt if the slice no longer assembles. */
std::optional<assembler::Program>
tryAssemble(const std::vector<std::string> &lines,
            const ShrinkOptions &opts)
{
    assembler::AssembleOptions aopts;
    aopts.name = opts.name;
    aopts.memSize = opts.memSize;
    try {
        return assembler::assemble(joinLines(lines), aopts);
    } catch (const std::exception &) {
        // Removing a label a branch still targets, the .text
        // directive, etc.  ddmin treats it as "does not reproduce".
        return std::nullopt;
    }
}

} // namespace

ShrinkResult
shrink(const std::string &source, const ShrinkOptions &opts)
{
    ShrinkResult result;
    result.source = source;

    // Candidate predicate: assembles AND fails the oracle with a
    // *differential* failure (selector non-empty).  The oracle runs
    // in a forked child (checkProgramIsolated) because deleting lines
    // routinely yields programs that abort the simulator — run off
    // the end, unmasked addresses, lost loop decrements — and those
    // are rejected as degenerate rather than chased: a "crash" or
    // program-level verdict means the *candidate* is broken, not that
    // it still reproduces the original divergence.
    std::vector<std::string> best = splitLines(source);
    auto fails = [&](const std::vector<std::string> &lines,
                     OracleVerdict &verdict_out,
                     uint64_t &insts_out) {
        ++result.trials;
        std::optional<assembler::Program> prog =
            tryAssemble(lines, opts);
        if (!prog)
            return false;
        OracleVerdict v = checkProgramIsolated(*prog, opts.oracle);
        bool differential = false;
        for (const OracleFailure &f : v.failures)
            differential |= !f.selector.empty();
        if (!differential)
            return false;
        verdict_out = v;
        insts_out = prog->size();
        return true;
    };

    if (!fails(best, result.verdict, result.instructions))
        return result; // does not reproduce: hand the input back
    result.reproduced = true;

    best = ddminLines(
        std::move(best),
        [&](const std::vector<std::string> &candidate) {
            OracleVerdict v;
            uint64_t insts = 0;
            if (!fails(candidate, v, insts))
                return false;
            result.verdict = std::move(v);
            result.instructions = insts;
            return true;
        });

    result.source = joinLines(best);
    return result;
}

std::string
reproSource(const ShrinkResult &result, uint64_t seed)
{
    std::string out = "; mgfuzz repro, seed " + std::to_string(seed) +
                      "\n";
    if (!result.verdict.failures.empty()) {
        const OracleFailure &f = result.verdict.failures.front();
        out += "; failure: kind=" + f.kind +
               (f.selector.empty() ? std::string()
                                   : " selector=" + f.selector) +
               "\n";
        out += ";   " + f.detail + "\n";
    }
    out += "; " + std::to_string(result.instructions) +
           " instructions after " + std::to_string(result.trials) +
           " shrink trials\n";
    out += result.source;
    return out;
}

} // namespace mg::fuzz
