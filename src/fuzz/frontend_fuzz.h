/**
 * @file
 * The frontend differential gate (docs/FRONTEND.md, docs/FUZZING.md).
 *
 * A C source is checked on two stacked levels:
 *
 *  1. frontend differential: the compiled program (lexer -> parser ->
 *     codegen -> assembler), functionally executed, must leave every
 *     global scalar and array element equal to what the AST
 *     interpreter (frontend/interp.h) computes for the same source.
 *     The interpreter never sees MG-RISC code, registers, or the
 *     linear-scan allocator, so agreement here is evidence against
 *     whole classes of codegen bugs (clobbered registers, wrong
 *     spill slots, evaluation-order drift, signedness mixups);
 *  2. the PR-9 architectural oracle (fuzz/oracle.h): the assembled
 *     program then runs through checkProgram() — rewriter, linter,
 *     every selector at CheckLevel::Full — exactly like a
 *     generator-built fuzz program.
 *
 * Failure kinds added on top of the oracle's: "compile" (the source
 * no longer compiles or assembles), "interp" (the reference
 * interpreter itself faulted: step budget, array bounds, call
 * depth), and "frontend-diff" (final global state divergence).
 */

#ifndef MG_FUZZ_FRONTEND_FUZZ_H
#define MG_FUZZ_FRONTEND_FUZZ_H

#include <cstdint>
#include <string>

#include "frontend/compile.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"

namespace mg::fuzz
{

/** How one C source gets checked. */
struct FrontendCheckOptions
{
    /** The architectural oracle run on the assembled program. */
    OracleOptions oracle;

    /** Name / memSize / global overrides for compilation. */
    frontend::CompileOptions compile;
};

/**
 * Run the two-level check on one C source, in-process.  All failures
 * accumulate into one verdict: a frontend divergence does not mask an
 * oracle finding or vice versa.
 */
OracleVerdict checkCSource(const std::string &source,
                           const FrontendCheckOptions &opts);

/** checkCSource() behind runVerdictIsolated() (fork containment). */
OracleVerdict checkCSourceIsolated(const std::string &source,
                                   const FrontendCheckOptions &opts);

/**
 * ddmin over C source *lines* (fuzz::ddminLines): keep deleting lines
 * while the program still fails for a real reason.  Candidates that
 * stop compiling, fault the reference interpreter, crash the child,
 * or stop terminating are rejected as degenerate — deleting a
 * declaration or a loop bound must not count as "still reproduces".
 * ShrinkResult.instructions is the minimized program's *static*
 * instruction count (0 if it no longer assembles cleanly, which
 * cannot happen for a reproducing result).
 */
ShrinkResult shrinkCSource(const std::string &source,
                           const FrontendCheckOptions &opts);

/**
 * Render a shrunk C repro as a committable .c file: "//" header
 * comments naming the seed and the first failure, then the minimized
 * source.  Repros live under tests/fuzz/repros/.
 */
std::string reproCSource(const ShrinkResult &result, uint64_t seed);

} // namespace mg::fuzz

#endif // MG_FUZZ_FRONTEND_FUZZ_H
