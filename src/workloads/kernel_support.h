/**
 * @file
 * Shared support for kernel builders: data-segment emission with
 * offset tracking, and the kernel registry types.
 */

#ifndef MG_WORKLOADS_KERNEL_SUPPORT_H
#define MG_WORKLOADS_KERNEL_SUPPORT_H

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"

namespace mg::workloads
{

/** Default data-segment base used by every kernel. */
constexpr uint64_t kDataBase = 0x10000;

/**
 * Builds the .data section text while tracking absolute addresses, so
 * generators can embed pointers (e.g. linked-list next fields).
 */
class DataBuilder
{
  public:
    DataBuilder() { text << "        .data\n"; }

    /** Place a label; returns its absolute address. */
    uint64_t
    label(const std::string &name)
    {
        text << name << ":\n";
        return kDataBase + offset;
    }

    /** Current absolute address. */
    uint64_t here() const { return kDataBase + offset; }

    void
    dwords(const std::vector<uint64_t> &vals)
    {
        emitList(".dword", vals, 8);
    }

    void
    words(const std::vector<uint32_t> &vals)
    {
        emitList(".word", std::vector<uint64_t>(vals.begin(), vals.end()),
                 4);
    }

    void
    bytes(const std::vector<uint8_t> &vals)
    {
        emitList(".byte", std::vector<uint64_t>(vals.begin(), vals.end()),
                 1);
    }

    void
    space(uint64_t n)
    {
        text << "        .space " << n << "\n";
        offset += n;
    }

    void
    align(uint64_t a)
    {
        uint64_t pad = (a - (offset % a)) % a;
        if (pad)
            space(pad);
    }

    std::string str() const { return text.str(); }

  private:
    void
    emitList(const char *directive, const std::vector<uint64_t> &vals,
             unsigned bytes_each)
    {
        for (size_t i = 0; i < vals.size(); i += 8) {
            text << "        " << directive << " ";
            for (size_t j = i; j < std::min(i + 8, vals.size()); ++j) {
                if (j > i)
                    text << ", ";
                text << vals[j];
            }
            text << "\n";
        }
        offset += vals.size() * bytes_each;
    }

    std::ostringstream text;
    uint64_t offset = 0;
};

/** Output of one kernel builder. */
struct KernelBuild
{
    std::string source;
    std::optional<uint64_t> expected;
    uint64_t memSize = 8ull << 20;
};

/** A kernel builder: (variant 0..2, alternate-input flag) -> program. */
using KernelBuilder = KernelBuild (*)(int variant, bool alt);

/** Registry entry. */
struct KernelDef
{
    const char *name;
    const char *suite;
    KernelBuilder build;
};

/** Deterministic seed for (kernel, variant, alt). */
uint64_t kernelSeed(const char *name, int variant, bool alt);

// Suite registries (defined one per translation unit).
const std::vector<KernelDef> &specKernels();
const std::vector<KernelDef> &mediaKernels();
const std::vector<KernelDef> &commKernels();
const std::vector<KernelDef> &mibenchKernels();
const std::vector<KernelDef> &cbenchKernels();

} // namespace mg::workloads

#endif // MG_WORKLOADS_KERNEL_SUPPORT_H
