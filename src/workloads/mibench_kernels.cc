/**
 * @file
 * MiBench-like kernels: quicksort, SHA-1 hashing, bit counting,
 * Horspool string search, fixed-point FFT and Dijkstra shortest
 * paths.
 */

#include "workloads/kernel_support.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

namespace mg::workloads
{

namespace
{

// ------------------------------------------------------------------
// qsort_like: iterative quicksort (Lomuto) with an explicit stack.
// ------------------------------------------------------------------
KernelBuild
qsortLike(int variant, bool alt)
{
    Rng rng(kernelSeed("qsort_like", variant, alt));
    const unsigned sizes[3] = {1000, 1200, 1400};
    unsigned n = sizes[variant] + (alt ? 250 : 0);

    std::vector<uint32_t> a(n);
    for (auto &v : a)
        v = static_cast<uint32_t>(rng.below(1u << 30));

    // Reference.
    std::vector<uint32_t> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    uint64_t acc = 0;
    for (unsigned i = 0; i < n; ++i)
        acc = (acc + static_cast<uint64_t>(sorted[i]) * (i + 1)) &
              0xffffffffull;

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("arr");
    data.words(a);
    data.align(8);
    data.label("wstack");
    data.space(16384);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, arr\n"
           "        la   r2, wstack\n"     // work-stack pointer
           // push (0, n-1)
           "        sw   r0, 0(r2)\n"
        << "        li   r3, " << (n - 1) << "\n"
        << "        sw   r3, 4(r2)\n"
           "        addi r2, r2, 8\n"
           "        la   r20, wstack\n"
           "qloop:  ble  r2, r20, sorted\n"
           "        addi r2, r2, -8\n"
           "        lw   r4, 0(r2)\n"      // lo
           "        lw   r5, 4(r2)\n"      // hi
           "        bge  r4, r5, qloop\n"
           // pivot = a[hi]
           "        slli r6, r5, 2\n"
           "        add  r6, r6, r1\n"
           "        lw   r7, 0(r6)\n"      // pivot
           "        mov  r8, r4\n"         // i
           "        mov  r9, r4\n"         // j
           "part:   bge  r9, r5, pdone\n"
           "        slli r10, r9, 2\n"
           "        add  r10, r10, r1\n"
           "        lw   r11, 0(r10)\n"    // a[j]
           "        bgtu r11, r7, nswap\n"
           "        slli r12, r8, 2\n"
           "        add  r12, r12, r1\n"
           "        lw   r13, 0(r12)\n"    // a[i]
           "        sw   r11, 0(r12)\n"
           "        sw   r13, 0(r10)\n"
           "        addi r8, r8, 1\n"
           "nswap:  addi r9, r9, 1\n"
           "        b    part\n"
           "pdone:  slli r12, r8, 2\n"     // swap a[i], a[hi]
           "        add  r12, r12, r1\n"
           "        lw   r13, 0(r12)\n"
           "        lw   r11, 0(r6)\n"
           "        sw   r11, 0(r12)\n"
           "        sw   r13, 0(r6)\n"
           // push (lo, i-1) and (i+1, hi)
           "        addi r10, r8, -1\n"
           "        sw   r4, 0(r2)\n"
           "        sw   r10, 4(r2)\n"
           "        addi r2, r2, 8\n"
           "        addi r10, r8, 1\n"
           "        sw   r10, 0(r2)\n"
           "        sw   r5, 4(r2)\n"
           "        addi r2, r2, 8\n"
           "        b    qloop\n"
           // checksum
           "sorted: li   r4, 0\n"
           "        li   r5, 1\n"
        << "        li   r6, " << n << "\n"
        << "        mov  r7, r1\n"
           "        li   r15, 4294967295\n"
           "accl:   lw   r8, 0(r7)\n"
           "        and  r8, r8, r15\n"
           "        mul  r8, r8, r5\n"
           "        add  r4, r4, r8\n"
           "        and  r4, r4, r15\n"
           "        addi r5, r5, 1\n"
           "        addi r7, r7, 4\n"
           "        addi r6, r6, -1\n"
           "        bnez r6, accl\n"
           "        la   r14, result\n"
           "        sd   r4, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// sha_like: SHA-1 compression over a stream of 512-bit blocks.
// ------------------------------------------------------------------
KernelBuild
shaLike(int variant, bool alt)
{
    Rng rng(kernelSeed("sha_like", variant, alt));
    const unsigned blocks_n[3] = {40, 50, 60};
    unsigned blocks = blocks_n[variant] + (alt ? 10 : 0);

    std::vector<uint32_t> msg(blocks * 16);
    for (auto &w : msg)
        w = static_cast<uint32_t>(rng.next());

    // Reference SHA-1 (chaining only, no padding).
    auto rotl = [](uint32_t x, int s) {
        return (x << s) | (x >> (32 - s));
    };
    uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                     0xC3D2E1F0u};
    for (unsigned blk = 0; blk < blocks; ++blk) {
        uint32_t w[80];
        for (int t = 0; t < 16; ++t)
            w[t] = msg[blk * 16 + t];
        for (int t = 16; t < 80; ++t)
            w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
        uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
        for (int t = 0; t < 80; ++t) {
            uint32_t f, k;
            if (t < 20) {
                f = (b & c) | (~b & d);
                k = 0x5A827999u;
            } else if (t < 40) {
                f = b ^ c ^ d;
                k = 0x6ED9EBA1u;
            } else if (t < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8F1BBCDCu;
            } else {
                f = b ^ c ^ d;
                k = 0xCA62C1D6u;
            }
            uint32_t temp = rotl(a, 5) + f + e + k + w[t];
            e = d;
            d = c;
            c = rotl(b, 30);
            b = a;
            a = temp;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
    }
    uint64_t expected = (static_cast<uint64_t>(h[0]) + h[1] + h[2] + h[3] +
                         h[4]) &
                        0xffffffffull;

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("msg");
    data.words(msg);
    data.label("wbuf");
    data.space(80 * 4);
    data.label("hbuf");
    data.words({0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                0xC3D2E1F0u});

    // Register plan: r1 msg ptr, r2 blocks left, r3 wbuf, r4 hbuf,
    // r5-r9 = a..e, r10-r13 temps, r15 = 0xffffffff, r16 t counter,
    // r17/r18/r19 scratch.
    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, msg\n"
        << "        li   r2, " << blocks << "\n"
        << "        la   r3, wbuf\n"
           "        la   r4, hbuf\n"
           "        li   r15, 4294967295\n"
           // ---- per block ----
           "block:  li   r16, 0\n"
           // copy 16 words into wbuf
           "wcopy:  slli r10, r16, 2\n"
           "        add  r11, r10, r1\n"
           "        lw   r12, 0(r11)\n"
           "        add  r11, r10, r3\n"
           "        sw   r12, 0(r11)\n"
           "        addi r16, r16, 1\n"
           "        li   r10, 16\n"
           "        blt  r16, r10, wcopy\n"
           // expand 16..79
           "wexp:   slli r10, r16, 2\n"
           "        add  r10, r10, r3\n"
           "        lw   r11, -12(r10)\n"
           "        lw   r12, -32(r10)\n"
           "        xor  r11, r11, r12\n"
           "        lw   r12, -56(r10)\n"
           "        xor  r11, r11, r12\n"
           "        lw   r12, -64(r10)\n"
           "        xor  r11, r11, r12\n"
           "        and  r11, r11, r15\n"
           "        slli r12, r11, 1\n"
           "        srli r11, r11, 31\n"
           "        or   r11, r11, r12\n"
           "        and  r11, r11, r15\n"
           "        sw   r11, 0(r10)\n"
           "        addi r16, r16, 1\n"
           "        li   r10, 80\n"
           "        blt  r16, r10, wexp\n"
           // load a..e
           "        lw   r5, 0(r4)\n"
           "        lw   r6, 4(r4)\n"
           "        lw   r7, 8(r4)\n"
           "        lw   r8, 12(r4)\n"
           "        lw   r9, 16(r4)\n"
           "        and  r5, r5, r15\n"
           "        and  r6, r6, r15\n"
           "        and  r7, r7, r15\n"
           "        and  r8, r8, r15\n"
           "        and  r9, r9, r15\n"
           "        li   r16, 0\n"
           // ---- 80 rounds ----
           "round:  li   r10, 20\n"
           "        blt  r16, r10, f1\n"
           "        li   r10, 40\n"
           "        blt  r16, r10, f2\n"
           "        li   r10, 60\n"
           "        blt  r16, r10, f3\n"
           // f4: b^c^d, k=0xCA62C1D6
           "        xor  r11, r6, r7\n"
           "        xor  r11, r11, r8\n"
           "        li   r12, 3395469782\n"
           "        b    fdone\n"
           "f1:     and  r11, r6, r7\n"
           "        not  r13, r6\n"
           "        and  r13, r13, r8\n"
           "        or   r11, r11, r13\n"
           "        li   r12, 1518500249\n"
           "        b    fdone\n"
           "f2:     xor  r11, r6, r7\n"
           "        xor  r11, r11, r8\n"
           "        li   r12, 1859775393\n"
           "        b    fdone\n"
           "f3:     and  r11, r6, r7\n"
           "        and  r13, r6, r8\n"
           "        or   r11, r11, r13\n"
           "        and  r13, r7, r8\n"
           "        or   r11, r11, r13\n"
           "        li   r12, 2400959708\n"
           "fdone:  and  r11, r11, r15\n"
           // temp = rotl(a,5) + f + e + k + w[t]
           "        slli r13, r5, 5\n"
           "        srli r17, r5, 27\n"
           "        or   r13, r13, r17\n"
           "        and  r13, r13, r15\n"
           "        add  r13, r13, r11\n"
           "        add  r13, r13, r9\n"
           "        add  r13, r13, r12\n"
           "        slli r17, r16, 2\n"
           "        add  r17, r17, r3\n"
           "        lw   r18, 0(r17)\n"
           "        and  r18, r18, r15\n"
           "        add  r13, r13, r18\n"
           "        and  r13, r13, r15\n"
           // rotate registers
           "        mov  r9, r8\n"
           "        mov  r8, r7\n"
           "        slli r7, r6, 30\n"
           "        srli r17, r6, 2\n"
           "        or   r7, r7, r17\n"
           "        and  r7, r7, r15\n"
           "        mov  r6, r5\n"
           "        mov  r5, r13\n"
           "        addi r16, r16, 1\n"
           "        li   r10, 80\n"
           "        blt  r16, r10, round\n"
           // h += a..e
           "        lw   r10, 0(r4)\n"
           "        add  r10, r10, r5\n"
           "        and  r10, r10, r15\n"
           "        sw   r10, 0(r4)\n"
           "        lw   r10, 4(r4)\n"
           "        add  r10, r10, r6\n"
           "        and  r10, r10, r15\n"
           "        sw   r10, 4(r4)\n"
           "        lw   r10, 8(r4)\n"
           "        add  r10, r10, r7\n"
           "        and  r10, r10, r15\n"
           "        sw   r10, 8(r4)\n"
           "        lw   r10, 12(r4)\n"
           "        add  r10, r10, r8\n"
           "        and  r10, r10, r15\n"
           "        sw   r10, 12(r4)\n"
           "        lw   r10, 16(r4)\n"
           "        add  r10, r10, r9\n"
           "        and  r10, r10, r15\n"
           "        sw   r10, 16(r4)\n"
           "        addi r1, r1, 64\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, block\n"
           // result = (h0+..+h4) & mask
           "        lw   r10, 0(r4)\n"
           "        lw   r11, 4(r4)\n"
           "        add  r10, r10, r11\n"
           "        lw   r11, 8(r4)\n"
           "        add  r10, r10, r11\n"
           "        lw   r11, 12(r4)\n"
           "        add  r10, r10, r11\n"
           "        lw   r11, 16(r4)\n"
           "        add  r10, r10, r11\n"
           "        and  r10, r10, r15\n"
           "        la   r14, result\n"
           "        sd   r10, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = expected;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// bitcount: three population-count methods per word.
// ------------------------------------------------------------------
KernelBuild
bitcountKernel(int variant, bool alt)
{
    Rng rng(kernelSeed("bitcount", variant, alt));
    const unsigned sizes[3] = {700, 850, 1000};
    unsigned n = sizes[variant] + (alt ? 200 : 0);

    std::vector<uint32_t> words(n);
    for (auto &w : words)
        w = static_cast<uint32_t>(rng.next());

    // Reference.
    uint64_t acc = 0;
    std::vector<uint8_t> nib(16);
    for (int i = 0; i < 16; ++i)
        nib[i] = static_cast<uint8_t>(__builtin_popcount(i));
    for (uint32_t w : words) {
        // Kernighan
        uint32_t x = w;
        unsigned c1 = 0;
        while (x) {
            x &= x - 1;
            ++c1;
        }
        // SWAR
        uint32_t y = w;
        y = y - ((y >> 1) & 0x55555555u);
        y = (y & 0x33333333u) + ((y >> 2) & 0x33333333u);
        y = (y + (y >> 4)) & 0x0F0F0F0Fu;
        unsigned c2 = (y * 0x01010101u) >> 24;
        // nibble table
        unsigned c3 = 0;
        for (int s = 0; s < 32; s += 4)
            c3 += nib[(w >> s) & 0xF];
        acc += c1 + c2 + c3;
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("words");
    data.words(words);
    data.label("nibtab");
    data.bytes(nib);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, words\n"
        << "        li   r2, " << n << "\n"
        << "        la   r3, nibtab\n"
           "        li   r4, 0\n"             // acc
           "        li   r15, 4294967295\n"
           "loop:   lw   r5, 0(r1)\n"
           "        and  r5, r5, r15\n"
           // Kernighan
           "        mov  r6, r5\n"
           "        li   r7, 0\n"
           "kern:   beqz r6, kdone\n"
           "        addi r8, r6, -1\n"
           "        and  r6, r6, r8\n"
           "        addi r7, r7, 1\n"
           "        b    kern\n"
           "kdone:  add  r4, r4, r7\n"
           // SWAR
           "        srli r8, r5, 1\n"
           "        li   r9, 1431655765\n"
           "        and  r8, r8, r9\n"
           "        sub  r8, r5, r8\n"
           "        li   r9, 858993459\n"
           "        and  r10, r8, r9\n"
           "        srli r8, r8, 2\n"
           "        and  r8, r8, r9\n"
           "        add  r8, r10, r8\n"
           "        srli r10, r8, 4\n"
           "        add  r8, r8, r10\n"
           "        li   r9, 252645135\n"
           "        and  r8, r8, r9\n"
           "        li   r9, 16843009\n"
           "        mul  r8, r8, r9\n"
           "        and  r8, r8, r15\n"
           "        srli r8, r8, 24\n"
           "        add  r4, r4, r8\n"
           // nibble table
           "        li   r9, 0\n"             // shift
           "nibl:   srl  r10, r5, r9\n"
           "        andi r10, r10, 15\n"
           "        add  r10, r10, r3\n"
           "        lbu  r11, 0(r10)\n"
           "        add  r4, r4, r11\n"
           "        addi r9, r9, 4\n"
           "        li   r10, 32\n"
           "        blt  r9, r10, nibl\n"
           "        addi r1, r1, 4\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, loop\n"
           "        la   r14, result\n"
           "        sd   r4, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// stringsearch: Horspool search of several patterns over a text.
// ------------------------------------------------------------------
KernelBuild
stringsearchKernel(int variant, bool alt)
{
    Rng rng(kernelSeed("stringsearch", variant, alt));
    const unsigned text_n[3] = {6000, 7500, 9000};
    unsigned n = text_n[variant] + (alt ? 1500 : 0);
    const unsigned plen = 6, npat = 4;

    // 4-letter alphabet so matches actually occur.
    std::vector<uint8_t> text(n);
    for (auto &c : text)
        c = static_cast<uint8_t>('a' + rng.below(4));
    std::vector<std::vector<uint8_t>> pats(npat);
    for (auto &p : pats) {
        p.resize(plen);
        for (auto &c : p)
            c = static_cast<uint8_t>('a' + rng.below(4));
    }

    // Reference Horspool.
    uint64_t acc = 0;
    for (unsigned pi = 0; pi < npat; ++pi) {
        const auto &p = pats[pi];
        unsigned skip[256];
        for (unsigned c = 0; c < 256; ++c)
            skip[c] = plen;
        for (unsigned i = 0; i + 1 < plen; ++i)
            skip[p[i]] = plen - 1 - i;
        unsigned pos = 0, matches = 0;
        while (pos + plen <= n) {
            int j = plen - 1;
            while (j >= 0 && text[pos + j] == p[j])
                --j;
            if (j < 0) {
                ++matches;
                pos += 1;
            } else {
                pos += skip[text[pos + plen - 1]];
            }
        }
        acc += matches;
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("text");
    data.bytes(text);
    data.align(4);
    std::vector<uint8_t> patflat;
    for (auto &p : pats)
        patflat.insert(patflat.end(), p.begin(), p.end());
    data.label("pats");
    data.bytes(patflat);
    data.align(4);
    data.label("skiptab");
    data.space(256 * 4);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r1, 0\n"          // pattern index
        << "        li   r2, " << npat << "\n"
        << "        li   r3, 0\n"          // acc
           "patloop:la   r4, pats\n"
        << "        muli r5, r1, " << plen << "\n"
        << "        add  r4, r4, r5\n"     // pattern base
           // build skip table
           "        la   r5, skiptab\n"
           "        li   r6, 0\n"
           "skinit: slli r7, r6, 2\n"
           "        add  r7, r7, r5\n"
        << "        li   r8, " << plen << "\n"
        << "        sw   r8, 0(r7)\n"
           "        addi r6, r6, 1\n"
           "        li   r7, 256\n"
           "        blt  r6, r7, skinit\n"
           "        li   r6, 0\n"
        << "skfill: li   r7, " << (plen - 1) << "\n"
        << "        bge  r6, r7, skdone\n"
           "        add  r8, r4, r6\n"
           "        lbu  r8, 0(r8)\n"
           "        slli r8, r8, 2\n"
           "        add  r8, r8, r5\n"
        << "        li   r9, " << (plen - 1) << "\n"
        << "        sub  r9, r9, r6\n"
           "        sw   r9, 0(r8)\n"
           "        addi r6, r6, 1\n"
           "        b    skfill\n"
           "skdone: la   r10, text\n"
           "        li   r11, 0\n"        // pos
           "        li   r12, 0\n"        // matches
        << "        li   r13, " << (n - plen) << "\n" // last pos
        << "scan:   bgt  r11, r13, pdone\n"
        << "        li   r6, " << (plen - 1) << "\n"  // j
        << "cmp:    blt  r6, r0, hit\n"
           "        add  r7, r10, r11\n"
           "        add  r7, r7, r6\n"
           "        lbu  r8, 0(r7)\n"
           "        add  r9, r4, r6\n"
           "        lbu  r9, 0(r9)\n"
           "        bne  r8, r9, miss\n"
           "        addi r6, r6, -1\n"
           "        b    cmp\n"
           "hit:    addi r12, r12, 1\n"
           "        addi r11, r11, 1\n"
           "        b    scan\n"
           "miss:   add  r7, r10, r11\n"
        << "        lbu  r8, " << (plen - 1) << "(r7)\n"
        << "        slli r8, r8, 2\n"
           "        add  r8, r8, r5\n"
           "        lw   r9, 0(r8)\n"
           "        add  r11, r11, r9\n"
           "        b    scan\n"
           "pdone:  add  r3, r3, r12\n"
           "        addi r1, r1, 1\n"
           "        blt  r1, r2, patloop\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// fft_like: fixed-point radix-2 DIT FFT.
// ------------------------------------------------------------------
KernelBuild
fftLike(int variant, bool alt)
{
    Rng rng(kernelSeed("fft_like", variant, alt));
    const unsigned sizes[3] = {256, 512, 512};
    unsigned n = sizes[variant] << (alt ? 1 : 0);
    unsigned logn = 0;
    while ((1u << logn) < n)
        ++logn;

    std::vector<int32_t> re(n), im(n, 0);
    for (auto &v : re)
        v = static_cast<int32_t>(rng.range(-1000, 1000));

    // Q14 twiddles for each stage-span.
    std::vector<int32_t> wr(n / 2), wi(n / 2);
    for (unsigned k = 0; k < n / 2; ++k) {
        double ang = -2.0 * M_PI * k / n;
        wr[k] = static_cast<int32_t>(std::lround(std::cos(ang) * 16384));
        wi[k] = static_cast<int32_t>(std::lround(std::sin(ang) * 16384));
    }

    // Reference: identical integer math.
    std::vector<int32_t> xr = re, xi = im;
    // bit-reverse permutation
    for (unsigned i = 0, j = 0; i < n; ++i) {
        if (i < j)
            std::swap(xr[i], xr[j]), std::swap(xi[i], xi[j]);
        unsigned m = n >> 1;
        while (m >= 1 && (j & m)) {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    for (unsigned s = 1; s <= logn; ++s) {
        unsigned m = 1u << s;
        unsigned half = m >> 1;
        unsigned tstep = n / m;
        for (unsigned k = 0; k < n; k += m) {
            for (unsigned j = 0; j < half; ++j) {
                int64_t twr = wr[j * tstep], twi = wi[j * tstep];
                int64_t ur = xr[k + j], ui = xi[k + j];
                int64_t vr = xr[k + j + half], vi = xi[k + j + half];
                int64_t tr = (vr * twr - vi * twi) >> 14;
                int64_t ti = (vr * twi + vi * twr) >> 14;
                xr[k + j] = static_cast<int32_t>(ur + tr);
                xi[k + j] = static_cast<int32_t>(ui + ti);
                xr[k + j + half] = static_cast<int32_t>(ur - tr);
                xi[k + j + half] = static_cast<int32_t>(ui - ti);
            }
        }
    }
    uint64_t acc = 0;
    for (unsigned i = 0; i < n; ++i) {
        acc += static_cast<uint32_t>(xr[i]) & 0xffffff;
        acc += static_cast<uint32_t>(xi[i]) & 0xffffff;
    }

    // The assembly program performs the same bit-reversal, so feed it
    // the *original* order and let it permute.
    DataBuilder data;
    data.label("result");
    data.dwords({0});
    auto to_words = [](const std::vector<int32_t> &v) {
        std::vector<uint32_t> w(v.size());
        for (size_t i = 0; i < v.size(); ++i)
            w[i] = static_cast<uint32_t>(v[i]);
        return w;
    };
    data.label("xr");
    data.words(to_words(re));
    data.label("xi");
    data.words(to_words(im));
    data.label("wr");
    data.words(to_words(wr));
    data.label("wi");
    data.words(to_words(wi));

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, xr\n"
           "        la   r2, xi\n"
           // ---- bit-reverse permutation ----
           "        li   r3, 0\n"     // i
           "        li   r4, 0\n"     // j
        << "        li   r5, " << n << "\n"
        << "brloop: bge  r3, r4, noswp\n"
           // swap element i and j in both arrays
           "        slli r6, r3, 2\n"
           "        add  r6, r6, r1\n"
           "        slli r7, r4, 2\n"
           "        add  r7, r7, r1\n"
           "        lw   r8, 0(r6)\n"
           "        lw   r9, 0(r7)\n"
           "        sw   r9, 0(r6)\n"
           "        sw   r8, 0(r7)\n"
           "        slli r6, r3, 2\n"
           "        add  r6, r6, r2\n"
           "        slli r7, r4, 2\n"
           "        add  r7, r7, r2\n"
           "        lw   r8, 0(r6)\n"
           "        lw   r9, 0(r7)\n"
           "        sw   r9, 0(r6)\n"
           "        sw   r8, 0(r7)\n"
           "noswp:  srli r6, r5, 1\n"  // m = n>>1
           "brw:    beqz r6, brw2\n"
           "        and  r7, r4, r6\n"
           "        beqz r7, brw2\n"
           "        xor  r4, r4, r6\n"
           "        srli r6, r6, 1\n"
           "        b    brw\n"
           "brw2:   or   r4, r4, r6\n"
           "        addi r3, r3, 1\n"
           "        blt  r3, r5, brloop\n"
           // ---- stages ----
           "        la   r20, wr\n"
           "        la   r21, wi\n"
           "        li   r10, 2\n"     // m = 2
        << "stage:  bgt  r10, r5, fdone\n"
           "        srli r11, r10, 1\n" // half
           "        div  r12, r5, r10\n"// tstep
           "        li   r13, 0\n"      // k
           "grp:    li   r14, 0\n"      // j
           "bfly:   mul  r15, r14, r12\n"
           "        slli r15, r15, 2\n"
           "        add  r16, r15, r20\n"
           "        lw   r16, 0(r16)\n" // twr
           "        add  r17, r15, r21\n"
           "        lw   r17, 0(r17)\n" // twi
           "        add  r18, r13, r14\n"
           "        slli r18, r18, 2\n" // idx u *4
           "        add  r19, r18, r1\n"
           "        lw   r22, 0(r19)\n" // ur
           "        add  r23, r18, r2\n"
           "        lw   r24, 0(r23)\n" // ui
           "        slli r25, r11, 2\n"
           "        add  r26, r19, r25\n"
           "        lw   r27, 0(r26)\n" // vr
           "        add  r28, r23, r25\n"
           "        lw   r29, 0(r28)\n" // vi
           // tr = (vr*twr - vi*twi) >> 14 ; ti = (vr*twi + vi*twr) >> 14
           "        mul  r15, r27, r16\n"
           "        mul  r25, r29, r17\n"
           "        sub  r15, r15, r25\n"
           "        srai r15, r15, 14\n" // tr
           "        mul  r25, r27, r17\n"
           "        mul  r27, r29, r16\n"
           "        add  r25, r25, r27\n"
           "        srai r25, r25, 14\n" // ti
           "        add  r27, r22, r15\n"
           "        sw   r27, 0(r19)\n"
           "        add  r27, r24, r25\n"
           "        sw   r27, 0(r23)\n"
           "        sub  r27, r22, r15\n"
           "        sw   r27, 0(r26)\n"
           "        sub  r27, r24, r25\n"
           "        sw   r27, 0(r28)\n"
           "        addi r14, r14, 1\n"
           "        blt  r14, r11, bfly\n"
           "        add  r13, r13, r10\n"
           "        blt  r13, r5, grp\n"
           "        slli r10, r10, 1\n"
           "        b    stage\n"
           // ---- checksum ----
           "fdone:  li   r3, 0\n"
           "        li   r4, 0\n"
           "        li   r13, 16777215\n"
           "accl:   slli r6, r4, 2\n"
           "        add  r7, r6, r1\n"
           "        lw   r8, 0(r7)\n"
           "        and  r8, r8, r13\n"
           "        add  r3, r3, r8\n"
           "        add  r7, r6, r2\n"
           "        lw   r8, 0(r7)\n"
           "        and  r8, r8, r13\n"
           "        add  r3, r3, r8\n"
           "        addi r4, r4, 1\n"
           "        blt  r4, r5, accl\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// dijkstra_like: adjacency-matrix Dijkstra from several sources.
// ------------------------------------------------------------------
KernelBuild
dijkstraLike(int variant, bool alt)
{
    Rng rng(kernelSeed("dijkstra_like", variant, alt));
    const unsigned nodes_n[3] = {44, 52, 60};
    unsigned nn = nodes_n[variant] + (alt ? 8 : 0);
    const unsigned sources = 3;
    const uint32_t inf = 1u << 29;

    std::vector<uint32_t> adj(nn * nn, inf);
    for (unsigned i = 0; i < nn; ++i) {
        adj[i * nn + i] = 0;
        for (unsigned j = 0; j < nn; ++j) {
            if (i != j && rng.chance(0.35))
                adj[i * nn + j] = 1 + static_cast<uint32_t>(rng.below(100));
        }
    }

    // Reference.
    uint64_t acc = 0;
    for (unsigned s = 0; s < sources; ++s) {
        std::vector<uint32_t> dist(nn, inf);
        std::vector<bool> done(nn, false);
        dist[s] = 0;
        for (unsigned iter = 0; iter < nn; ++iter) {
            uint32_t best = inf + 1;
            unsigned u = nn;
            for (unsigned v = 0; v < nn; ++v) {
                if (!done[v] && dist[v] < best) {
                    best = dist[v];
                    u = v;
                }
            }
            if (u == nn)
                break;
            done[u] = true;
            for (unsigned v = 0; v < nn; ++v) {
                uint32_t w = adj[u * nn + v];
                if (w != inf && dist[u] + w < dist[v])
                    dist[v] = dist[u] + w;
            }
        }
        for (unsigned v = 0; v < nn; ++v)
            acc += dist[v] == inf ? 777 : dist[v];
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("adj");
    data.words(adj);
    data.label("dist");
    data.space(nn * 4);
    data.label("donev");
    data.space(nn * 4);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r1, 0\n"            // source
        << "        li   r2, " << sources << "\n"
        << "        li   r3, 0\n"            // acc
        << "        li   r26, " << inf << "\n"
        << "        li   r27, " << nn << "\n"
        << "srcloop:la   r4, dist\n"
           "        la   r5, donev\n"
           // init dist = inf, done = 0
           "        li   r6, 0\n"
           "init:   slli r7, r6, 2\n"
           "        add  r8, r7, r4\n"
           "        sw   r26, 0(r8)\n"
           "        add  r8, r7, r5\n"
           "        sw   r0, 0(r8)\n"
           "        addi r6, r6, 1\n"
           "        blt  r6, r27, init\n"
           "        slli r7, r1, 2\n"
           "        add  r7, r7, r4\n"
           "        sw   r0, 0(r7)\n"        // dist[s] = 0
           "        li   r9, 0\n"            // iteration
           // Branchless (if-converted) min scan, as -O3 emits.
           "iter:   addi r10, r26, 1\n"      // best
           "        mov  r11, r27\n"         // u = nn
           "        li   r6, 0\n"
           "scan:   slli r7, r6, 2\n"
           "        add  r8, r7, r5\n"
           "        lw   r12, 0(r8)\n"       // done[v]
           "        add  r8, r7, r4\n"
           "        lw   r18, 0(r8)\n"       // dist[v]
           "        sltu r19, r18, r10\n"    // dist < best
           "        sltiu r12, r12, 1\n"     // !done
           "        and  r19, r19, r12\n"
           "        sub  r19, r0, r19\n"     // take mask
           "        xor  r17, r10, r18\n"
           "        and  r17, r17, r19\n"
           "        xor  r10, r10, r17\n"    // best
           "        xor  r17, r11, r6\n"
           "        and  r17, r17, r19\n"
           "        xor  r11, r11, r17\n"    // u
           "        addi r6, r6, 1\n"
           "        blt  r6, r27, scan\n"
           "        beq  r11, r27, srcdone\n"
           "        slli r7, r11, 2\n"
           "        add  r8, r7, r5\n"
           "        li   r12, 1\n"
           "        sw   r12, 0(r8)\n"       // done[u] = 1
           "        add  r8, r7, r4\n"
           "        lw   r13, 0(r8)\n"       // dist[u]
           "        mul  r15, r11, r27\n"
           "        slli r15, r15, 2\n"
           "        la   r16, adj\n"
           "        add  r15, r15, r16\n"    // adj row base
           // Branchless relax: dist[v] = min(dist[v], dist[u]+w)
           // when the edge exists.
           "        li   r6, 0\n"
           "relax:  slli r7, r6, 2\n"
           "        add  r8, r7, r15\n"
           "        lw   r16, 0(r8)\n"       // w
           "        add  r18, r16, r13\n"    // cand
           "        xor  r19, r16, r26\n"
           "        sltu r19, r0, r19\n"     // edge exists
           "        add  r8, r7, r4\n"
           "        lw   r17, 0(r8)\n"       // dist[v]
           "        sltu r16, r18, r17\n"    // cand < dist
           "        and  r19, r19, r16\n"
           "        sub  r19, r0, r19\n"
           "        xor  r16, r17, r18\n"
           "        and  r16, r16, r19\n"
           "        xor  r17, r17, r16\n"
           "        sw   r17, 0(r8)\n"
           "        addi r6, r6, 1\n"
           "        blt  r6, r27, relax\n"
           "        addi r9, r9, 1\n"
           "        blt  r9, r27, iter\n"
           // accumulate distances
           "srcdone:li   r6, 0\n"
           "sacc:   slli r7, r6, 2\n"
           "        add  r8, r7, r4\n"
           "        lw   r12, 0(r8)\n"
           "        bne  r12, r26, finite\n"
           "        li   r12, 777\n"
           "finite: add  r3, r3, r12\n"
           "        addi r6, r6, 1\n"
           "        blt  r6, r27, sacc\n"
           "        addi r1, r1, 1\n"
           "        blt  r1, r2, srcloop\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

} // namespace

const std::vector<KernelDef> &
mibenchKernels()
{
    static const std::vector<KernelDef> defs = {
        {"qsort_like", "mibench", qsortLike},
        {"sha_like", "mibench", shaLike},
        {"bitcount", "mibench", bitcountKernel},
        {"stringsearch", "mibench", stringsearchKernel},
        {"fft_like", "mibench", fftLike},
        {"dijkstra_like", "mibench", dijkstraLike},
    };
    return defs;
}

} // namespace mg::workloads
