/**
 * @file
 * CommBench-like kernels: table-driven CRC, IP-style checksumming,
 * trie route lookup, deficit-round-robin scheduling, packet
 * fragmentation and GF(256) Reed-Solomon arithmetic.
 */

#include "workloads/kernel_support.h"

#include <algorithm>
#include <numeric>

namespace mg::workloads
{

namespace
{

// ------------------------------------------------------------------
// crc32: table-driven CRC over a byte stream.
// ------------------------------------------------------------------
KernelBuild
crc32Kernel(int variant, bool alt)
{
    Rng rng(kernelSeed("crc32", variant, alt));
    const unsigned sizes[3] = {3000, 3700, 4400};
    unsigned n = sizes[variant] + (alt ? 800 : 0);
    const unsigned passes = 3;

    std::vector<uint8_t> input(n);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.below(256));

    // CRC-32 (reflected, poly 0xEDB88320) table.
    std::vector<uint32_t> table(256);
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }

    // Reference: several passes over the same buffer (a long-lived
    // packet engine reuses its buffers, so the stream is cache-warm).
    uint32_t crc = 0xFFFFFFFFu;
    for (unsigned p = 0; p < passes; ++p) {
        for (uint8_t b : input)
            crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
    }
    crc ^= 0xFFFFFFFFu;

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("crctab");
    data.words(table);
    data.label("input");
    data.bytes(input);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
        << "main:   li   r17, " << passes << "\n"
        << "        la   r3, crctab\n"
           "        li   r4, 4294967295\n" // crc
           "        li   r15, 255\n"
           "        li   r16, 4294967295\n"
           "pass:   la   r1, input\n"
        << "        li   r2, " << n << "\n"
        << "loop:   lbu  r5, 0(r1)\n"
           "        xor  r6, r4, r5\n"
           "        and  r6, r6, r15\n"
           "        slli r6, r6, 2\n"
           "        add  r6, r6, r3\n"
           "        lw   r7, 0(r6)\n"
           "        and  r7, r7, r16\n"   // table entry, zero-extended
           "        srli r8, r4, 8\n"
           "        xor  r4, r7, r8\n"
           "        addi r1, r1, 1\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, loop\n"
           "        addi r17, r17, -1\n"
           "        bnez r17, pass\n"
           "        xor  r4, r4, r16\n"
           "        and  r4, r4, r16\n"
           "        la   r14, result\n"
           "        sd   r4, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = crc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// checksum: 16-bit ones-complement (IP header style) over packets.
// ------------------------------------------------------------------
KernelBuild
checksumKernel(int variant, bool alt)
{
    Rng rng(kernelSeed("checksum", variant, alt));
    const unsigned pkts_n[3] = {180, 220, 260};
    unsigned pkts = pkts_n[variant] + (alt ? 40 : 0);
    const unsigned words_per_pkt = 16;
    const unsigned passes = 4;

    std::vector<uint32_t> halves(pkts * words_per_pkt);
    for (auto &h : halves)
        h = static_cast<uint32_t>(rng.below(65536));

    // Reference: per packet, four deferred partial sums (the standard
    // high-throughput formulation) folded branchlessly at the end.
    uint64_t acc = 0;
    for (unsigned p = 0; p < pkts; ++p) {
        uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (unsigned i = 0; i < words_per_pkt; i += 4) {
            s0 += halves[p * words_per_pkt + i];
            s1 += halves[p * words_per_pkt + i + 1];
            s2 += halves[p * words_per_pkt + i + 2];
            s3 += halves[p * words_per_pkt + i + 3];
        }
        uint64_t sum = s0 + s1 + s2 + s3;
        sum = (sum & 0xffff) + (sum >> 16);
        sum = (sum & 0xffff) + (sum >> 16);
        sum = (sum & 0xffff) + (sum >> 16);
        acc += (~sum) & 0xffff;
    }
    acc *= passes; // each pass over the warm buffer is identical

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    std::vector<uint8_t> hb;
    hb.reserve(halves.size() * 2);
    for (uint32_t h : halves) {
        hb.push_back(static_cast<uint8_t>(h));
        hb.push_back(static_cast<uint8_t>(h >> 8));
    }
    data.label("pkts");
    data.bytes(hb);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
        << "main:   li   r16, " << passes << "\n"
        << "        li   r3, 0\n"          // acc
           "        li   r15, 65535\n"
           "pass:   la   r1, pkts\n"
        << "        li   r2, " << pkts << "\n"
        << "pkt:    li   r4, 0\n"          // s0
           "        li   r5, 0\n"          // s1
           "        li   r6, 0\n"          // s2
           "        li   r7, 0\n"          // s3
        << "        li   r8, " << (words_per_pkt / 4) << "\n"
        << "half:   lhu  r9, 0(r1)\n"
           "        lhu  r10, 2(r1)\n"
           "        lhu  r11, 4(r1)\n"
           "        lhu  r12, 6(r1)\n"
           "        add  r4, r4, r9\n"
           "        add  r5, r5, r10\n"
           "        add  r6, r6, r11\n"
           "        add  r7, r7, r12\n"
           "        addi r1, r1, 8\n"
           "        addi r8, r8, -1\n"
           "        bnez r8, half\n"
           "        add  r4, r4, r5\n"
           "        add  r6, r6, r7\n"
           "        add  r4, r4, r6\n"
           "        and  r9, r4, r15\n"
           "        srli r10, r4, 16\n"
           "        add  r4, r9, r10\n"
           "        and  r9, r4, r15\n"
           "        srli r10, r4, 16\n"
           "        add  r4, r9, r10\n"
           "        and  r9, r4, r15\n"
           "        srli r10, r4, 16\n"
           "        add  r4, r9, r10\n"
           "        not  r4, r4\n"
           "        and  r4, r4, r15\n"
           "        add  r3, r3, r4\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, pkt\n"
           "        addi r16, r16, -1\n"
           "        bnez r16, pass\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// route_like: binary-trie longest lookup over random 16-bit keys.
// ------------------------------------------------------------------
KernelBuild
routeLike(int variant, bool alt)
{
    Rng rng(kernelSeed("route_like", variant, alt));
    const unsigned pkts_n[3] = {1300, 1600, 1900};
    unsigned pkts = pkts_n[variant] + (alt ? 300 : 0);
    const unsigned depth_bits = 16;

    // Build a random binary trie in an array: node = {child0, child1,
    // nexthop}; child index 0 = missing (node 0 is a sentinel root at
    // index 1 ... we keep root at index 1).
    struct Node
    {
        uint32_t child[2] = {0, 0};
        uint32_t hop = 0;
    };
    std::vector<Node> trie(2);
    trie[1].hop = 1;
    auto insert = [&](uint32_t key, unsigned len, uint32_t hop) {
        uint32_t cur = 1;
        for (unsigned b = 0; b < len; ++b) {
            unsigned bit = (key >> (depth_bits - 1 - b)) & 1;
            if (trie[cur].child[bit] == 0) {
                trie[cur].child[bit] =
                    static_cast<uint32_t>(trie.size());
                trie.push_back(Node{});
            }
            cur = trie[cur].child[bit];
        }
        trie[cur].hop = hop;
    };
    for (int i = 0; i < 300; ++i) {
        insert(static_cast<uint32_t>(rng.below(1u << depth_bits)),
               4 + static_cast<unsigned>(rng.below(depth_bits - 3)),
               1 + static_cast<uint32_t>(rng.below(15)));
    }

    std::vector<uint32_t> keys(pkts);
    for (auto &k : keys)
        k = static_cast<uint32_t>(rng.below(1u << depth_bits));

    // Reference: walk as deep as possible, remember last nonzero hop.
    uint64_t acc = 0;
    for (uint32_t key : keys) {
        uint32_t cur = 1, hop = 0;
        for (unsigned b = 0; b < depth_bits; ++b) {
            if (trie[cur].hop)
                hop = trie[cur].hop;
            unsigned bit = (key >> (depth_bits - 1 - b)) & 1;
            uint32_t nxt = trie[cur].child[bit];
            if (!nxt)
                break;
            cur = nxt;
        }
        if (trie[cur].hop)
            hop = trie[cur].hop;
        acc += hop;
    }

    // Node layout: 12 bytes {child0, child1, hop} as words.
    std::vector<uint32_t> node_words(trie.size() * 3);
    for (size_t i = 0; i < trie.size(); ++i) {
        node_words[3 * i] = trie[i].child[0];
        node_words[3 * i + 1] = trie[i].child[1];
        node_words[3 * i + 2] = trie[i].hop;
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("trie");
    data.words(node_words);
    data.label("keys");
    data.words(keys);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, keys\n"
        << "        li   r2, " << pkts << "\n"
        << "        la   r3, trie\n"
           "        li   r4, 0\n"            // acc
           "pkt:    lw   r5, 0(r1)\n"        // key
           "        li   r6, 1\n"            // cur
           "        li   r7, 0\n"            // hop
        << "        li   r8, " << depth_bits << "\n" // bits left
           // node ptr = trie + cur*12
        << "step:   muli r9, r6, 12\n"
           "        add  r9, r9, r3\n"
           "        lw   r10, 8(r9)\n"       // node hop
           "        beqz r10, nohop\n"
           "        mov  r7, r10\n"
           "nohop:  beqz r8, done\n"
           "        addi r8, r8, -1\n"
           "        srl  r11, r5, r8\n"
           "        andi r11, r11, 1\n"
           "        slli r11, r11, 2\n"
           "        add  r11, r11, r9\n"
           "        lw   r6, 0(r11)\n"       // child
           "        bnez r6, step\n"
           "done:   add  r4, r4, r7\n"
           "        addi r1, r1, 4\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, pkt\n"
           "        la   r14, result\n"
           "        sd   r4, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// drr_like: deficit round robin packet scheduling.
// ------------------------------------------------------------------
KernelBuild
drrLike(int variant, bool alt)
{
    Rng rng(kernelSeed("drr_like", variant, alt));
    const unsigned pkts_n[3] = {6000, 7500, 9000};
    unsigned total_pkts = pkts_n[variant] + (alt ? 1500 : 0);
    const unsigned queues = 8;
    const uint32_t quantum = 500;

    // Per-queue packet size lists.
    std::vector<std::vector<uint32_t>> qpkts(queues);
    for (unsigned p = 0; p < total_pkts; ++p) {
        unsigned q = static_cast<unsigned>(rng.below(queues));
        qpkts[q].push_back(64 +
                           static_cast<uint32_t>(rng.below(1400)));
    }

    // Reference DRR.
    uint64_t acc = 0;
    {
        std::vector<size_t> head(queues, 0);
        std::vector<uint32_t> deficit(queues, 0);
        uint64_t served = 0, order = 0;
        while (served < total_pkts) {
            for (unsigned q = 0; q < queues; ++q) {
                if (head[q] >= qpkts[q].size())
                    continue;
                deficit[q] += quantum;
                while (head[q] < qpkts[q].size() &&
                       qpkts[q][head[q]] <= deficit[q]) {
                    deficit[q] -= qpkts[q][head[q]];
                    acc += qpkts[q][head[q]] + (order++ & 0xff);
                    ++head[q];
                    ++served;
                }
            }
        }
    }

    // Layout: per queue, a word count then packet sizes (padded to a
    // fixed stride so the base address is computable).
    size_t stride = 0;
    for (auto &v : qpkts)
        stride = std::max(stride, v.size());
    stride += 1;
    std::vector<uint32_t> qdata(queues * stride, 0);
    for (unsigned q = 0; q < queues; ++q) {
        qdata[q * stride] = static_cast<uint32_t>(qpkts[q].size());
        for (size_t i = 0; i < qpkts[q].size(); ++i)
            qdata[q * stride + 1 + i] = qpkts[q][i];
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("qdata");
    data.words(qdata);
    data.label("head");
    data.space(queues * 4);
    data.label("deficit");
    data.space(queues * 4);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r1, 0\n"            // served
        << "        li   r2, " << total_pkts << "\n"
        << "        la   r3, qdata\n"
           "        la   r4, head\n"
           "        la   r5, deficit\n"
           "        li   r6, 0\n"            // acc
           "        li   r7, 0\n"            // order
           "round:  li   r8, 0\n"            // q
        << "qloop:  muli r9, r8, " << (stride * 4) << "\n"
        << "        add  r9, r9, r3\n"       // queue base
           "        lw   r10, 0(r9)\n"       // count
           "        slli r11, r8, 2\n"
           "        add  r12, r11, r4\n"     // &head[q]
           "        lw   r13, 0(r12)\n"      // head
           "        bge  r13, r10, nextq\n"
           "        add  r14, r11, r5\n"     // &deficit[q]
           "        lw   r15, 0(r14)\n"
        << "        addi r15, r15, " << quantum << "\n"
        << "serve:  bge  r13, r10, qdone\n"
           "        slli r16, r13, 2\n"
           "        add  r16, r16, r9\n"
           "        lw   r17, 4(r16)\n"      // pkt size
           "        bgt  r17, r15, qdone\n"
           "        sub  r15, r15, r17\n"
           "        andi r18, r7, 255\n"
           "        add  r17, r17, r18\n"
           "        add  r6, r6, r17\n"
           "        addi r7, r7, 1\n"
           "        addi r13, r13, 1\n"
           "        addi r1, r1, 1\n"
           "        b    serve\n"
           "qdone:  sw   r13, 0(r12)\n"
           "        sw   r15, 0(r14)\n"
           "nextq:  addi r8, r8, 1\n"
        << "        li   r19, " << queues << "\n"
        << "        blt  r8, r19, qloop\n"
           "        blt  r1, r2, round\n"
           "        la   r14, result\n"
           "        sd   r6, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// frag_like: packet fragmentation with per-fragment header math.
// ------------------------------------------------------------------
KernelBuild
fragLike(int variant, bool alt)
{
    Rng rng(kernelSeed("frag_like", variant, alt));
    const unsigned pkts_n[3] = {600, 730, 860};
    unsigned pkts = pkts_n[variant] + (alt ? 140 : 0);
    const uint32_t mtu = 576, hdr = 20;
    const unsigned passes = 3;

    std::vector<uint32_t> lengths(pkts);
    for (auto &l : lengths)
        l = 64 + static_cast<uint32_t>(rng.below(3000));

    // Reference: split payload into MTU-hdr chunks; per fragment fold
    // a pseudo header checksum of (id, offset, len).
    uint64_t acc = 0;
    for (unsigned p = 0; p < pkts; ++p) {
        uint32_t remaining = lengths[p];
        uint32_t offset = 0;
        uint32_t id = p * 7 + 1;
        while (remaining > 0) {
            uint32_t payload = std::min(remaining, mtu - hdr);
            uint32_t sum = id + offset + payload;
            sum = (sum & 0xffff) + (sum >> 16);
            sum = (sum & 0xffff) + (sum >> 16);
            acc += sum;
            offset += payload;
            remaining -= payload;
        }
    }
    acc *= passes; // warm passes are identical

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("lens");
    data.words(lengths);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
        << "main:   li   r17, " << passes << "\n"
        << "        li   r3, 0\n"        // acc
           "        li   r15, 65535\n"
        << "        li   r16, " << (mtu - hdr) << "\n"
        << "pass:   la   r1, lens\n"
        << "        li   r2, " << pkts << "\n"
        << "        li   r4, 0\n"        // p
           "pkt:    lw   r5, 0(r1)\n"    // remaining
           "        li   r6, 0\n"        // offset
           "        muli r7, r4, 7\n"
           "        addi r7, r7, 1\n"    // id
           "frag:   beqz r5, pdone\n"
           "        mov  r8, r5\n"
           "        bleu r8, r16, fits\n"
           "        mov  r8, r16\n"
           "fits:   add  r9, r7, r6\n"
           "        add  r9, r9, r8\n"
           "        and  r10, r9, r15\n"
           "        srli r11, r9, 16\n"
           "        add  r9, r10, r11\n"
           "        and  r10, r9, r15\n"
           "        srli r11, r9, 16\n"
           "        add  r9, r10, r11\n"
           "        add  r3, r3, r9\n"
           "        add  r6, r6, r8\n"
           "        sub  r5, r5, r8\n"
           "        b    frag\n"
           "pdone:  addi r1, r1, 4\n"
           "        addi r4, r4, 1\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, pkt\n"
           "        addi r17, r17, -1\n"
           "        bnez r17, pass\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// rs_like: GF(256) multiply-accumulate via log/exp tables.
// ------------------------------------------------------------------
KernelBuild
rsLike(int variant, bool alt)
{
    Rng rng(kernelSeed("rs_like", variant, alt));
    const unsigned sizes[3] = {2400, 2900, 3400};
    unsigned n = sizes[variant] + (alt ? 600 : 0);
    const unsigned passes = 3;

    // GF(256) with poly 0x11d.
    std::vector<uint8_t> exp_tab(512), log_tab(256, 0);
    {
        unsigned x = 1;
        for (unsigned i = 0; i < 255; ++i) {
            exp_tab[i] = static_cast<uint8_t>(x);
            log_tab[x] = static_cast<uint8_t>(i);
            x <<= 1;
            if (x & 0x100)
                x ^= 0x11d;
        }
        for (unsigned i = 255; i < 512; ++i)
            exp_tab[i] = exp_tab[i - 255];
    }

    std::vector<uint8_t> a(n), b(n);
    for (unsigned i = 0; i < n; ++i) {
        a[i] = static_cast<uint8_t>(rng.below(256));
        b[i] = static_cast<uint8_t>(rng.below(256));
    }

    // Reference: acc += gfmul(a[i], b[i]) over several warm passes.
    uint64_t acc = 0;
    for (unsigned p = 0; p < passes; ++p) {
        for (unsigned i = 0; i < n; ++i) {
            uint8_t prod = 0;
            if (a[i] && b[i])
                prod = exp_tab[log_tab[a[i]] + log_tab[b[i]]];
            acc = (acc + prod) & 0xffffffff;
        }
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("exptab");
    data.bytes(exp_tab);
    data.label("logtab");
    data.bytes(log_tab);
    data.label("avec");
    data.bytes(a);
    data.label("bvec");
    data.bytes(b);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
        << "main:   li   r16, " << passes << "\n"
        << "        la   r4, exptab\n"
           "        la   r5, logtab\n"
           "        li   r6, 0\n"          // acc
           "pass:   la   r1, avec\n"
           "        la   r2, bvec\n"
        << "        li   r3, " << n << "\n"
        << "loop:   lbu  r7, 0(r1)\n"
           "        lbu  r8, 0(r2)\n"
           "        li   r9, 0\n"          // prod
           "        beqz r7, nomul\n"
           "        beqz r8, nomul\n"
           "        add  r10, r5, r7\n"
           "        lbu  r10, 0(r10)\n"
           "        add  r11, r5, r8\n"
           "        lbu  r11, 0(r11)\n"
           "        add  r10, r10, r11\n"
           "        add  r10, r10, r4\n"
           "        lbu  r9, 0(r10)\n"
           "nomul:  add  r6, r6, r9\n"
           "        li   r12, 4294967295\n"
           "        and  r6, r6, r12\n"
           "        addi r1, r1, 1\n"
           "        addi r2, r2, 1\n"
           "        addi r3, r3, -1\n"
           "        bnez r3, loop\n"
           "        addi r16, r16, -1\n"
           "        bnez r16, pass\n"
           "        la   r14, result\n"
           "        sd   r6, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

} // namespace

const std::vector<KernelDef> &
commKernels()
{
    static const std::vector<KernelDef> defs = {
        {"crc32", "comm", crc32Kernel},
        {"checksum", "comm", checksumKernel},
        {"route_like", "comm", routeLike},
        {"drr_like", "comm", drrLike},
        {"frag_like", "comm", fragLike},
        {"rs_like", "comm", rsLike},
    };
    return defs;
}

} // namespace mg::workloads
