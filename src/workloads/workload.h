/**
 * @file
 * The benchmark suite: 36 kernels x 3 input variants = 108 programs.
 * The spec/media/comm/mibench suites mirror the paper's 78 benchmarks
 * from SPECint2000, MediaBench, CommBench and MiBench (§3.1); the
 * cbench suite adds kernels written in the C subset and compiled by
 * the mgsim frontend (docs/FRONTEND.md).
 *
 * Every kernel is a real MG-RISC assembly program with
 * generator-produced input data embedded in its data segment, run to
 * completion.  Where the paper's suites contribute a behavioural
 * regime (pointer chasing, branchy byte processing, multiply-heavy
 * DSP, table-driven packet processing, ...), a kernel here reproduces
 * that regime.  Most kernels also carry a reference result used by
 * the correctness tests (a C++ model for the assembly suites, the AST
 * interpreter for cbench): the program stores a 64-bit checksum at
 * data label "result".
 *
 * Each (kernel, variant) additionally has an *alternate* input set
 * (different seed/size/distribution) supporting the Figure-9
 * cross-input robustness experiment.
 */

#ifndef MG_WORKLOADS_WORKLOAD_H
#define MG_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "assembler/program.h"

namespace mg::workloads
{

/** One benchmark identity. */
struct WorkloadSpec
{
    std::string kernel; ///< e.g. "crc32"
    std::string suite;  ///< "spec" | "media" | "comm" | "mibench" | "cbench"
    int variant = 0;    ///< input variant 0..2

    /** Display name, e.g. "crc32.1". */
    std::string name() const;
};

/** A built benchmark: program plus its reference result. */
struct BuiltWorkload
{
    assembler::Program program;

    /** Expected value at data label "result" (if the kernel has a
     *  reference implementation). */
    std::optional<uint64_t> expected;
};

/** All 108 benchmarks, grouped by suite. */
const std::vector<WorkloadSpec> &workloadList();

/** Benchmarks of one suite. */
std::vector<WorkloadSpec> suiteWorkloads(const std::string &suite);

/** Look up a spec by display name ("adpcm_c.0"). */
std::optional<WorkloadSpec> findWorkload(const std::string &name);

/**
 * Build a benchmark program.
 * @param spec       which benchmark
 * @param alt_input  use the alternate input set (Figure 9)
 */
BuiltWorkload buildWorkload(const WorkloadSpec &spec,
                            bool alt_input = false);

/** Names of all kernels (36). */
std::vector<std::string> kernelNames();

} // namespace mg::workloads

#endif // MG_WORKLOADS_WORKLOAD_H
