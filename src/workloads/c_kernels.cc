/**
 * @file
 * The "cbench" suite: kernels written in the mgsim C subset
 * (examples/c/) and compiled by the frontend at registry-build time.
 *
 * The build pipeline per workload is
 *
 *   embedded .c text --frontend::compile--> MG-RISC assembly
 *                                           (KernelBuild::source)
 *
 * with SEED/N replaced per (variant, alt) through the compiler's
 * globalOverrides, so the three variants and the +alt inputs of each
 * kernel differ in both data and trip counts, like every other suite.
 *
 * The expected checksum comes from the AST interpreter
 * (frontend/interp.h) — the compiler's differential ground truth.  It
 * shares no lowering, register allocation, or assembler code with the
 * compiled binary, so the workload self-check (final "result" word
 * after a functional run) re-verifies compiler correctness on every
 * kernel, complementing `mgsim fuzz --frontend`'s random programs.
 */

#include <cstring>

#include "common/logging.h"
#include "frontend/compile.h"
#include "frontend/interp.h"
#include "workloads/kernel_support.h"

namespace mg::workloads
{

namespace
{

#include "c_kernel_sources.inc"

/**
 * Per-kernel problem sizes.  `n` is the N override per variant, alt
 * adds `altDelta`.  Sizes are tuned so every workload's dynamic
 * instruction count lands in roughly 5k-100k (see docs/FRONTEND.md).
 */
struct CKernelSpec
{
    const char *name;
    uint64_t n[3];
    uint64_t altDelta;
};

constexpr CKernelSpec kCKernels[] = {
    {"c_adpcm", {300, 450, 600}, 50},
    {"c_bitcount", {200, 300, 400}, 50},
    {"c_crc32", {160, 256, 352}, 32},
    {"c_dijkstra", {4, 6, 8}, 1},
    {"c_fir", {96, 160, 224}, 16},
    {"c_histogram", {600, 1000, 1400}, 100},
    {"c_isort", {64, 96, 128}, 16},
    {"c_matmul", {1, 2, 2}, 0},
    {"c_sha", {2, 3, 4}, 1},
    {"c_strsearch", {160, 256, 352}, 32},
};

const char *
sourceFor(const char *name)
{
    for (const EmbeddedCSource &s : kEmbeddedCSources)
        if (std::strcmp(s.name, name) == 0)
            return s.text;
    mg_fatal("cbench: no embedded source for kernel '%s' "
             "(re-run cmake after adding examples/c files)",
             name);
}

KernelBuild
buildC(int ki, int variant, bool alt)
{
    const CKernelSpec &spec = kCKernels[ki];
    const uint64_t seed = kernelSeed(spec.name, variant, alt);
    const uint64_t n = spec.n[variant] + (alt ? spec.altDelta : 0);

    frontend::CompileOptions copts;
    copts.name = spec.name;
    copts.globalOverrides = {{"SEED", seed}, {"N", n}};
    frontend::CompileResult comp =
        frontend::compile(sourceFor(spec.name), copts);
    if (!comp.ok)
        mg_fatal("cbench %s: %s", spec.name, comp.error.c_str());

    frontend::InterpOptions iopts;
    iopts.globalOverrides = copts.globalOverrides;
    frontend::InterpResult ref = frontend::interpret(*comp.ast, iopts);
    if (!ref.ok)
        mg_fatal("cbench %s: interpreter: %s", spec.name,
                 ref.error.c_str());

    KernelBuild kb;
    kb.source = comp.asmText;
    for (size_t gi = 0; gi < comp.ast->globals.size(); ++gi)
        if (comp.ast->globals[gi].name == "result")
            kb.expected = ref.globals[gi][0];
    if (!kb.expected)
        mg_fatal("cbench %s: kernel has no 'result' global", spec.name);
    return kb;
}

template <int I>
KernelBuild
buildCK(int variant, bool alt)
{
    return buildC(I, variant, alt);
}

} // namespace

const std::vector<KernelDef> &
cbenchKernels()
{
    static const std::vector<KernelDef> kKernels = {
        {"c_adpcm", "cbench", buildCK<0>},
        {"c_bitcount", "cbench", buildCK<1>},
        {"c_crc32", "cbench", buildCK<2>},
        {"c_dijkstra", "cbench", buildCK<3>},
        {"c_fir", "cbench", buildCK<4>},
        {"c_histogram", "cbench", buildCK<5>},
        {"c_isort", "cbench", buildCK<6>},
        {"c_matmul", "cbench", buildCK<7>},
        {"c_sha", "cbench", buildCK<8>},
        {"c_strsearch", "cbench", buildCK<9>},
    };
    return kKernels;
}

} // namespace mg::workloads
