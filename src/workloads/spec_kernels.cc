/**
 * @file
 * SPECint2000-like kernels: irregular integer codes — pointer chasing
 * with large footprints (mcf), table-driven state machines (gcc),
 * move-to-front coding (bzip2), LZ77 match searching (gzip), token
 * stream parsing (parser), grid cost walks (vpr) and simulated
 * annealing swap kernels (twolf).
 */

#include "workloads/kernel_support.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/logging.h"

namespace mg::workloads
{

namespace
{

// ------------------------------------------------------------------
// mcf_like: pointer chase over a large node array (cache-miss heavy).
// ------------------------------------------------------------------
KernelBuild
mcfLike(int variant, bool alt)
{
    Rng rng(kernelSeed("mcf_like", variant, alt));
    const unsigned sizes[3] = {20000, 36000, 56000};
    unsigned n = sizes[variant];
    if (alt)
        n = n + n / 4;
    const unsigned steps = 16000;

    // Random single-cycle permutation (Sattolo).
    std::vector<uint32_t> next(n);
    std::iota(next.begin(), next.end(), 0);
    for (unsigned i = n - 1; i > 0; --i) {
        unsigned j = static_cast<unsigned>(rng.below(i));
        std::swap(next[i], next[j]);
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    uint64_t nodes_addr = data.here();
    std::vector<uint64_t> node_words(2 * n);
    std::vector<uint64_t> value(n);
    for (unsigned i = 0; i < n; ++i) {
        value[i] = rng.below(1u << 20);
        node_words[2 * i] = nodes_addr + 16ull * next[i];
        node_words[2 * i + 1] = value[i];
    }
    data.label("nodes");
    data.dwords(node_words);

    // C++ reference.
    uint64_t acc = 0;
    unsigned cur = 0;
    for (unsigned s = 0; s < steps; ++s) {
        uint64_t v = value[cur];
        acc += v;
        if (v & 1)
            acc += 3;
        cur = next[cur];
    }

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, nodes\n"
           "        li   r2, 0\n"
        << "        li   r3, " << steps << "\n"
        << "loop:   ld   r4, 8(r1)\n"
           "        ld   r1, 0(r1)\n"
           "        add  r2, r2, r4\n"
           "        andi r5, r4, 1\n"
           "        beqz r5, skip\n"
           "        addi r2, r2, 3\n"
           "skip:   addi r3, r3, -1\n"
           "        bnez r3, loop\n"
           "        la   r6, result\n"
           "        sd   r2, 0(r6)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 4ull << 20;
    return out;
}

// ------------------------------------------------------------------
// gcc_like: table-driven finite state machine over a token stream.
// ------------------------------------------------------------------
KernelBuild
gccLike(int variant, bool alt)
{
    Rng rng(kernelSeed("gcc_like", variant, alt));
    const unsigned sizes[3] = {7000, 9000, 11000};
    unsigned n = sizes[variant] + (alt ? 1500 : 0);
    const unsigned accept_state = 13;

    std::vector<uint8_t> tokens(n);
    for (auto &t : tokens)
        t = static_cast<uint8_t>(rng.below(16));
    std::vector<uint8_t> trans(256);
    for (auto &t : trans)
        t = static_cast<uint8_t>(rng.below(16));
    std::vector<uint32_t> weights(16);
    for (auto &w : weights)
        w = static_cast<uint32_t>(rng.below(1000));

    // C++ reference.
    uint64_t acc = 0, accepts = 0;
    unsigned state = 0;
    for (unsigned i = 0; i < n; ++i) {
        state = trans[state * 16 + tokens[i]];
        acc += weights[state];
        if (state == accept_state) {
            ++accepts;
            state = 0;
        }
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("tokens");
    data.bytes(tokens);
    data.align(4);
    data.label("trans");
    data.bytes(trans);
    data.align(4);
    data.label("weights");
    data.words(weights);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r1, 0\n"
           "        li   r2, 0\n"
           "        li   r3, 0\n"
           "        li   r9, 0\n"
           "        la   r4, tokens\n"
           "        la   r5, trans\n"
           "        la   r6, weights\n"
        << "        li   r7, " << n << "\n"
        << "        li   r13, " << accept_state << "\n"
        << "loop:   lbu  r8, 0(r4)\n"
           "        slli r10, r2, 4\n"
           "        add  r10, r10, r8\n"
           "        add  r10, r10, r5\n"
           "        lbu  r2, 0(r10)\n"
           "        slli r11, r2, 2\n"
           "        add  r11, r11, r6\n"
           "        lw   r12, 0(r11)\n"
           "        add  r3, r3, r12\n"
           "        bne  r2, r13, noacc\n"
           "        addi r9, r9, 1\n"
           "        li   r2, 0\n"
           "noacc:  addi r4, r4, 1\n"
           "        addi r1, r1, 1\n"
           "        blt  r1, r7, loop\n"
           "        muli r9, r9, 1000000\n"
           "        add  r3, r3, r9\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc + accepts * 1000000;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// bzip_like: move-to-front transform (branchy inner scans).
// ------------------------------------------------------------------
KernelBuild
bzipLike(int variant, bool alt)
{
    Rng rng(kernelSeed("bzip_like", variant, alt));
    const unsigned sizes[3] = {2600, 3200, 3800};
    unsigned n = sizes[variant] + (alt ? 600 : 0);

    // Input with locality: a small rotating working set plus noise.
    std::vector<uint8_t> input(n);
    uint8_t hot[8];
    for (auto &h : hot)
        h = static_cast<uint8_t>(rng.below(256));
    for (unsigned i = 0; i < n; ++i) {
        if (rng.chance(0.8))
            input[i] = hot[rng.below(8)];
        else
            input[i] = static_cast<uint8_t>(rng.below(256));
        if (rng.chance(0.01))
            hot[rng.below(8)] = static_cast<uint8_t>(rng.below(256));
    }

    // C++ reference.
    std::vector<uint8_t> mtf(256);
    std::iota(mtf.begin(), mtf.end(), 0);
    uint64_t acc = 0;
    for (unsigned i = 0; i < n; ++i) {
        unsigned j = 0;
        while (mtf[j] != input[i])
            ++j;
        acc += j;
        for (unsigned k = j; k > 0; --k)
            mtf[k] = mtf[k - 1];
        mtf[0] = input[i];
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("input");
    data.bytes(input);
    data.align(4);
    std::vector<uint8_t> mtf_init(256);
    std::iota(mtf_init.begin(), mtf_init.end(), 0);
    data.label("mtf");
    data.bytes(mtf_init);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, input\n"
        << "        li   r2, " << n << "\n"
        << "        la   r3, mtf\n"
           "        li   r4, 0\n"          // acc
           "outer:  lbu  r5, 0(r1)\n"      // b = input byte
           "        li   r6, 0\n"          // j
           "scan:   add  r7, r3, r6\n"
           "        lbu  r8, 0(r7)\n"
           "        beq  r8, r5, found\n"
           "        addi r6, r6, 1\n"
           "        b    scan\n"
           "found:  add  r4, r4, r6\n"
           "shift:  beqz r6, place\n"
           "        add  r9, r3, r6\n"
           "        lbu  r10, -1(r9)\n"
           "        sb   r10, 0(r9)\n"
           "        addi r6, r6, -1\n"
           "        b    shift\n"
           "place:  sb   r5, 0(r3)\n"
           "        addi r1, r1, 1\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, outer\n"
           "        la   r11, result\n"
           "        sd   r4, 0(r11)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// gzip_like: LZ77 hash-head match searching.
// ------------------------------------------------------------------
KernelBuild
gzipLike(int variant, bool alt)
{
    Rng rng(kernelSeed("gzip_like", variant, alt));
    const unsigned sizes[3] = {4200, 5200, 6200};
    unsigned n = sizes[variant] + (alt ? 800 : 0);

    // Compressible input: copies of earlier substrings plus literals.
    std::vector<uint8_t> input;
    input.reserve(n);
    while (input.size() < n) {
        if (input.size() > 32 && rng.chance(0.6)) {
            unsigned back =
                1 + static_cast<unsigned>(rng.below(
                        std::min<uint64_t>(input.size() - 8, 200)));
            unsigned len = 3 + static_cast<unsigned>(rng.below(10));
            size_t start = input.size() - back;
            for (unsigned k = 0; k < len && input.size() < n; ++k)
                input.push_back(input[start + k]);
        } else {
            input.push_back(static_cast<uint8_t>(rng.below(64)));
        }
    }

    const unsigned hbits = 12, hsize = 1u << hbits;
    const unsigned max_match = 8;

    // C++ reference (head[] holds pos+1; 0 = empty).
    std::vector<uint32_t> head(hsize, 0);
    uint64_t acc = 0;
    for (unsigned pos = 0; pos + max_match < n; ++pos) {
        unsigned h = ((input[pos] << 4) ^ (input[pos + 1] << 2) ^
                      input[pos + 2]) &
                     (hsize - 1);
        uint32_t cand = head[h];
        if (cand != 0) {
            unsigned cpos = cand - 1;
            unsigned len = 0;
            while (len < max_match && input[cpos + len] == input[pos + len])
                ++len;
            acc += len;
        }
        head[h] = pos + 1;
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("input");
    data.bytes(input);
    data.align(4);
    data.label("head");
    data.space(4ull * hsize);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, input\n"       // base
           "        li   r2, 0\n"           // pos
        << "        li   r3, " << (n - max_match - 1) << "\n" // last pos
        << "        la   r4, head\n"
           "        li   r5, 0\n"           // acc
        << "        li   r15, " << (hsize - 1) << "\n"
        << "outer:  add  r6, r1, r2\n"
           "        lbu  r7, 0(r6)\n"
           "        lbu  r8, 1(r6)\n"
           "        lbu  r9, 2(r6)\n"
           "        slli r7, r7, 4\n"
           "        slli r8, r8, 2\n"
           "        xor  r7, r7, r8\n"
           "        xor  r7, r7, r9\n"
           "        and  r7, r7, r15\n"     // h
           "        slli r10, r7, 2\n"
           "        add  r10, r10, r4\n"
           "        lw   r11, 0(r10)\n"     // cand
           "        beqz r11, nomatch\n"
           "        addi r11, r11, -1\n"
           "        add  r11, r11, r1\n"    // cand ptr
           "        li   r12, 0\n"          // len
        << "mloop:  li   r13, " << max_match << "\n"
        << "        bge  r12, r13, mdone\n"
           "        add  r13, r11, r12\n"
           "        lbu  r14, 0(r13)\n"
           "        add  r13, r6, r12\n"
           "        lbu  r13, 0(r13)\n"
           "        bne  r14, r13, mdone\n"
           "        addi r12, r12, 1\n"
           "        b    mloop\n"
           "mdone:  add  r5, r5, r12\n"
           "nomatch:addi r11, r2, 1\n"
           "        sw   r11, 0(r10)\n"
           "        addi r2, r2, 1\n"
           "        ble  r2, r3, outer\n"
           "        la   r14, result\n"
           "        sd   r5, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// parser_like: bracket/token matching with an explicit stack.
// ------------------------------------------------------------------
KernelBuild
parserLike(int variant, bool alt)
{
    Rng rng(kernelSeed("parser_like", variant, alt));
    const unsigned sizes[3] = {9000, 11000, 13000};
    unsigned n = sizes[variant] + (alt ? 2000 : 0);

    // Tokens: 0/2 = open, 1/3 = close (matching type), 4..15 operand.
    std::vector<uint8_t> tokens;
    tokens.reserve(n);
    std::vector<uint8_t> open_stack;
    while (tokens.size() < n) {
        double r = rng.uniform();
        if (r < 0.14 && open_stack.size() < 60) {
            uint8_t t = rng.chance(0.5) ? 0 : 2;
            open_stack.push_back(t);
            tokens.push_back(t);
        } else if (r < 0.28 && !open_stack.empty()) {
            uint8_t t = open_stack.back();
            open_stack.pop_back();
            // 5% mismatched close to exercise the error path.
            uint8_t close = static_cast<uint8_t>(t + 1);
            if (rng.chance(0.05))
                close = close == 1 ? 3 : 1;
            tokens.push_back(close);
        } else {
            tokens.push_back(static_cast<uint8_t>(4 + rng.below(12)));
        }
    }

    // C++ reference.
    uint64_t acc = 0, mismatches = 0;
    std::vector<uint8_t> stk;
    for (uint8_t t : tokens) {
        if (t == 0 || t == 2) {
            stk.push_back(t);
        } else if (t == 1 || t == 3) {
            if (stk.empty()) {
                ++mismatches;
            } else {
                uint8_t o = stk.back();
                stk.pop_back();
                if (o + 1 != t)
                    ++mismatches;
            }
        } else {
            acc += t;
        }
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("tokens");
    data.bytes(tokens);
    data.align(8);
    data.label("stack");
    data.space(4096);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, tokens\n"
        << "        li   r2, " << n << "\n"
        << "        la   r3, stack\n"      // stack pointer (grows up)
           "        li   r4, 0\n"          // acc
           "        li   r5, 0\n"          // mismatches
           "loop:   lbu  r6, 0(r1)\n"
           "        li   r7, 4\n"
           "        bge  r6, r7, operand\n"
           "        andi r8, r6, 1\n"
           "        bnez r8, close\n"
           "        sb   r6, 0(r3)\n"      // push open
           "        addi r3, r3, 1\n"
           "        b    next\n"
           "close:  la   r9, stack\n"
           "        bgt  r3, r9, pop\n"
           "        addi r5, r5, 1\n"
           "        b    next\n"
           "pop:    addi r3, r3, -1\n"
           "        lbu  r10, 0(r3)\n"
           "        addi r10, r10, 1\n"
           "        beq  r10, r6, next\n"
           "        addi r5, r5, 1\n"
           "        b    next\n"
           "operand:add  r4, r4, r6\n"
           "next:   addi r1, r1, 1\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, loop\n"
           "        muli r5, r5, 1000000\n"
           "        add  r4, r4, r5\n"
           "        la   r11, result\n"
           "        sd   r4, 0(r11)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc + mismatches * 1000000;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// vpr_like: random walk over a cost grid with boundary clamping.
// ------------------------------------------------------------------
KernelBuild
vprLike(int variant, bool alt)
{
    Rng rng(kernelSeed("vpr_like", variant, alt));
    const unsigned moves_n[3] = {4000, 4750, 5500};
    unsigned n = moves_n[variant] + (alt ? 750 : 0);
    const unsigned w = 64, h = 64;
    const unsigned passes = 2;

    std::vector<uint32_t> grid(w * h);
    for (auto &g : grid)
        g = static_cast<uint32_t>(rng.below(256));
    // Moves come in runs (a router explores in sweeps), so direction
    // branches are fairly predictable while bounds checks stay live.
    std::vector<uint8_t> moves(n);
    {
        uint8_t dir = 0;
        for (auto &m : moves) {
            if (rng.chance(0.18))
                dir = static_cast<uint8_t>(rng.below(4));
            m = dir;
        }
    }

    // C++ reference (two warm passes, position carries over).
    uint64_t acc = 0;
    int x = w / 2, y = h / 2;
    for (unsigned p = 0; p < passes; ++p) {
        for (unsigned i = 0; i < n; ++i) {
            switch (moves[i]) {
              case 0: if (x > 0) --x; break;
              case 1: if (x < static_cast<int>(w) - 1) ++x; break;
              case 2: if (y > 0) --y; break;
              default: if (y < static_cast<int>(h) - 1) ++y; break;
            }
            acc += grid[static_cast<unsigned>(y) * w +
                        static_cast<unsigned>(x)];
        }
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("grid");
    data.words(grid);
    data.label("moves");
    data.bytes(moves);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r3, grid\n"
        << "        li   r4, " << (w / 2) << "\n" // x
        << "        li   r5, " << (h / 2) << "\n" // y
        << "        li   r6, 0\n"                 // acc
        << "        li   r14, " << (w - 1) << "\n"
        << "        li   r15, " << (h - 1) << "\n"
        << "        li   r13, " << passes << "\n"
        << "pass:   la   r1, moves\n"
        << "        li   r2, " << n << "\n"
        << "loop:   lbu  r7, 0(r1)\n"
           "        bnez r7, m1\n"
           "        beqz r4, done_m\n"
           "        addi r4, r4, -1\n"
           "        b    done_m\n"
           "m1:     li   r8, 1\n"
           "        bne  r7, r8, m2\n"
           "        bge  r4, r14, done_m\n"
           "        addi r4, r4, 1\n"
           "        b    done_m\n"
           "m2:     li   r8, 2\n"
           "        bne  r7, r8, m3\n"
           "        beqz r5, done_m\n"
           "        addi r5, r5, -1\n"
           "        b    done_m\n"
           "m3:     bge  r5, r15, done_m\n"
           "        addi r5, r5, 1\n"
           "done_m: slli r9, r5, 6\n"
           "        add  r9, r9, r4\n"
           "        slli r9, r9, 2\n"
           "        add  r9, r9, r3\n"
           "        lw   r10, 0(r9)\n"
           "        add  r6, r6, r10\n"
           "        addi r1, r1, 1\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, loop\n"
           "        addi r13, r13, -1\n"
           "        bnez r13, pass\n"
           "        la   r11, result\n"
           "        sd   r6, 0(r11)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// twolf_like: greedy placement swaps with cost deltas.
// ------------------------------------------------------------------
KernelBuild
twolfLike(int variant, bool alt)
{
    Rng rng(kernelSeed("twolf_like", variant, alt));
    const unsigned pairs_n[3] = {3600, 4400, 5200};
    unsigned m = pairs_n[variant] + (alt ? 700 : 0);
    const unsigned n = 1024;

    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (unsigned i = n - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    std::vector<uint32_t> pair_idx(2 * m);
    for (auto &p : pair_idx)
        p = static_cast<uint32_t>(rng.below(n));

    // C++ reference: accept a swap when it lowers sum |perm[i]-i|.
    auto cost = [](int64_t v, int64_t i) {
        int64_t d = v - i;
        return d < 0 ? -d : d;
    };
    std::vector<uint32_t> p = perm;
    uint64_t accepted = 0, gain = 0;
    for (unsigned k = 0; k < m; ++k) {
        unsigned i = pair_idx[2 * k], j = pair_idx[2 * k + 1];
        int64_t before = cost(p[i], i) + cost(p[j], j);
        int64_t after = cost(p[j], i) + cost(p[i], j);
        if (after < before) {
            std::swap(p[i], p[j]);
            ++accepted;
            gain += static_cast<uint64_t>(before - after);
        }
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("perm");
    data.words(perm);
    data.label("pairs");
    data.words(pair_idx);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, pairs\n"
        << "        li   r2, " << m << "\n"
        << "        la   r3, perm\n"
           "        li   r4, 0\n"      // accepted
           "        li   r5, 0\n"      // gain
           "loop:   lw   r6, 0(r1)\n"  // i
           "        lw   r7, 4(r1)\n"  // j
           "        slli r8, r6, 2\n"
           "        add  r8, r8, r3\n"
           "        lw   r9, 0(r8)\n"  // p[i]
           "        slli r10, r7, 2\n"
           "        add  r10, r10, r3\n"
           "        lw   r11, 0(r10)\n" // p[j]
           // before = |p[i]-i| + |p[j]-j|
           "        sub  r12, r9, r6\n"
           "        srai r13, r12, 63\n"
           "        xor  r12, r12, r13\n"
           "        sub  r12, r12, r13\n"
           "        sub  r14, r11, r7\n"
           "        srai r13, r14, 63\n"
           "        xor  r14, r14, r13\n"
           "        sub  r14, r14, r13\n"
           "        add  r12, r12, r14\n"
           // after = |p[j]-i| + |p[i]-j|
           "        sub  r15, r11, r6\n"
           "        srai r13, r15, 63\n"
           "        xor  r15, r15, r13\n"
           "        sub  r15, r15, r13\n"
           "        sub  r16, r9, r7\n"
           "        srai r13, r16, 63\n"
           "        xor  r16, r16, r13\n"
           "        sub  r16, r16, r13\n"
           "        add  r15, r15, r16\n"
           "        bge  r15, r12, reject\n"
           "        sw   r11, 0(r8)\n"
           "        sw   r9, 0(r10)\n"
           "        addi r4, r4, 1\n"
           "        sub  r17, r12, r15\n"
           "        add  r5, r5, r17\n"
           "reject: addi r1, r1, 8\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, loop\n"
           "        muli r4, r4, 1000000\n"
           "        add  r5, r5, r4\n"
           "        la   r18, result\n"
           "        sd   r5, 0(r18)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = gain + accepted * 1000000;
    out.memSize = 1ull << 20;
    return out;
}

} // namespace

const std::vector<KernelDef> &
specKernels()
{
    static const std::vector<KernelDef> defs = {
        {"mcf_like", "spec", mcfLike},
        {"gcc_like", "spec", gccLike},
        {"bzip_like", "spec", bzipLike},
        {"gzip_like", "spec", gzipLike},
        {"parser_like", "spec", parserLike},
        {"vpr_like", "spec", vprLike},
        {"twolf_like", "spec", twolfLike},
    };
    return defs;
}

} // namespace mg::workloads
