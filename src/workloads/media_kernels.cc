/**
 * @file
 * MediaBench-like kernels: ADPCM speech coding (the paper's Figure-8
 * limit study uses adpcm.c), integer DCT (JPEG), wavelet filtering
 * (EPIC), SAD motion estimation (MPEG), adaptive prediction (G.721)
 * and LTP correlation (GSM).
 */

#include "workloads/kernel_support.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mg::workloads
{

namespace
{

// IMA ADPCM tables.
const int kStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
const int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                             -1, -1, -1, -1, 2, 4, 6, 8};

/** Smooth synthetic PCM waveform. */
std::vector<int32_t>
makeWaveform(Rng &rng, unsigned n)
{
    std::vector<int32_t> s(n);
    int32_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
        v += static_cast<int32_t>(rng.range(-700, 700));
        v = std::clamp(v, -30000, 30000);
        s[i] = v;
    }
    return s;
}

/** Reference IMA ADPCM encoder; returns codes, updates acc model. */
std::vector<uint8_t>
adpcmEncodeRef(const std::vector<int32_t> &samples, uint64_t &acc_out,
               int32_t &pred_out)
{
    std::vector<uint8_t> codes;
    codes.reserve(samples.size());
    int32_t pred = 0;
    int index = 0;
    uint64_t acc = 0;
    for (int32_t sample : samples) {
        int32_t diff = sample - pred;
        unsigned code = 0;
        if (diff < 0) {
            code = 8;
            diff = -diff;
        }
        int32_t step = kStepTable[index];
        int32_t tmpstep = step;
        if (diff >= tmpstep) {
            code |= 4;
            diff -= tmpstep;
        }
        tmpstep >>= 1;
        if (diff >= tmpstep) {
            code |= 2;
            diff -= tmpstep;
        }
        tmpstep >>= 1;
        if (diff >= tmpstep)
            code |= 1;

        int32_t diffq = step >> 3;
        if (code & 4)
            diffq += step;
        if (code & 2)
            diffq += step >> 1;
        if (code & 1)
            diffq += step >> 2;
        if (code & 8)
            pred -= diffq;
        else
            pred += diffq;
        pred = std::clamp(pred, -32768, 32767);
        index = std::clamp(index + kIndexTable[code], 0, 88);
        acc += code;
        codes.push_back(static_cast<uint8_t>(code));
    }
    acc_out = acc;
    pred_out = pred;
    return codes;
}

/** Shared ADPCM table data emission. */
void
emitAdpcmTables(DataBuilder &data)
{
    std::vector<uint32_t> step(89);
    for (int i = 0; i < 89; ++i)
        step[i] = static_cast<uint32_t>(kStepTable[i]);
    std::vector<uint32_t> idx(16);
    for (int i = 0; i < 16; ++i)
        idx[i] = static_cast<uint32_t>(kIndexTable[i]);
    data.label("steptab");
    data.words(step);
    data.label("idxtab");
    data.words(idx);
}

/** Shared ADPCM decode/reconstruct assembly block.
 *
 * In: r10 = code, r11 = step, r2 = pred, r3 = index,
 *     r8 = steptab, r9 = idxtab.
 * Uses r12-r16; leaves updated r2 (pred), r3 (index), r11 unchanged.
 */
const char *kAdpcmReconstruct =
    "        srai r12, r11, 3\n"        // diffq = step>>3
    "        andi r13, r10, 4\n"
    "        beqz r13, rc2\n"
    "        add  r12, r12, r11\n"
    "rc2:    andi r13, r10, 2\n"
    "        beqz r13, rc1\n"
    "        srai r14, r11, 1\n"
    "        add  r12, r12, r14\n"
    "rc1:    andi r13, r10, 1\n"
    "        beqz r13, rc0\n"
    "        srai r14, r11, 2\n"
    "        add  r12, r12, r14\n"
    "rc0:    andi r13, r10, 8\n"
    "        beqz r13, rplus\n"
    "        sub  r2, r2, r12\n"
    "        b    rclamp\n"
    "rplus:  add  r2, r2, r12\n"
    "rclamp: li   r13, -32768\n"
    "        bge  r2, r13, rcl2\n"
    "        li   r2, -32768\n"
    "rcl2:   li   r13, 32767\n"
    "        ble  r2, r13, rcl3\n"
    "        li   r2, 32767\n"
    "rcl3:   slli r14, r10, 2\n"        // index += idxtab[code]
    "        add  r14, r14, r9\n"
    "        lw   r14, 0(r14)\n"
    "        add  r3, r3, r14\n"
    "        bge  r3, r0, icl1\n"
    "        li   r3, 0\n"
    "icl1:   li   r13, 88\n"
    "        ble  r3, r13, icl2\n"
    "        li   r3, 88\n"
    "icl2:";

// ------------------------------------------------------------------
// adpcm_c: IMA ADPCM encoder.
// ------------------------------------------------------------------
KernelBuild
adpcmC(int variant, bool alt)
{
    Rng rng(kernelSeed("adpcm_c", variant, alt));
    const unsigned sizes[3] = {800, 1000, 1200};
    unsigned n = sizes[variant] + (alt ? 200 : 0);
    const unsigned passes = 3;
    std::vector<int32_t> samples = makeWaveform(rng, n);

    // The program encodes the (cache-warm) sample buffer `passes`
    // times without resetting the coder state — a continuous stream.
    std::vector<int32_t> stream;
    for (unsigned p = 0; p < passes; ++p)
        stream.insert(stream.end(), samples.begin(), samples.end());
    uint64_t acc;
    int32_t pred_final;
    adpcmEncodeRef(stream, acc, pred_final);
    uint64_t expected =
        acc * 65536 + (static_cast<uint32_t>(pred_final) & 0xffff);

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    std::vector<uint32_t> swords(n);
    for (unsigned i = 0; i < n; ++i)
        swords[i] = static_cast<uint32_t>(samples[i]);
    data.label("samples");
    data.words(swords);
    emitAdpcmTables(data);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r2, 0\n"          // pred
           "        li   r3, 0\n"          // index
           "        li   r4, 0\n"          // acc
        << "        li   r15, " << passes << "\n"
        << "        la   r8, steptab\n"
           "        la   r9, idxtab\n"
           "pass:   la   r1, samples\n"
        << "        li   r5, " << n << "\n"
        << "loop:   lw   r6, 0(r1)\n"      // sample
           "        sub  r7, r6, r2\n"     // diff
           "        li   r10, 0\n"         // code
           "        bge  r7, r0, pos\n"
           "        li   r10, 8\n"
           "        sub  r7, r0, r7\n"
           "pos:    slli r11, r3, 2\n"
           "        add  r11, r11, r8\n"
           "        lw   r11, 0(r11)\n"    // step
           "        blt  r7, r11, b2\n"
           "        ori  r10, r10, 4\n"
           "        sub  r7, r7, r11\n"
           "b2:     srai r12, r11, 1\n"
           "        blt  r7, r12, b1\n"
           "        ori  r10, r10, 2\n"
           "        sub  r7, r7, r12\n"
           "b1:     srai r12, r11, 2\n"
           "        blt  r7, r12, b0\n"
           "        ori  r10, r10, 1\n"
           "b0:     add  r4, r4, r10\n"    // acc += code
        << kAdpcmReconstruct << "\n"
        << "        addi r1, r1, 4\n"
           "        addi r5, r5, -1\n"
           "        bnez r5, loop\n"
           "        addi r15, r15, -1\n"
           "        bnez r15, pass\n"
           "        muli r4, r4, 65536\n"
           "        li   r13, 65535\n"
           "        and  r2, r2, r13\n"
           "        add  r4, r4, r2\n"
           "        la   r14, result\n"
           "        sd   r4, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = expected;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// adpcm_d: IMA ADPCM decoder.
// ------------------------------------------------------------------
KernelBuild
adpcmD(int variant, bool alt)
{
    Rng rng(kernelSeed("adpcm_d", variant, alt));
    const unsigned sizes[3] = {1100, 1350, 1600};
    unsigned n = sizes[variant] + (alt ? 250 : 0);
    const unsigned passes = 3;
    std::vector<int32_t> samples = makeWaveform(rng, n);
    uint64_t enc_acc;
    int32_t enc_pred;
    std::vector<uint8_t> codes = adpcmEncodeRef(samples, enc_acc, enc_pred);

    // Reference decode of the code buffer repeated `passes` times
    // (continuous stream, warm buffer).
    std::vector<uint8_t> code_stream;
    for (unsigned p = 0; p < passes; ++p)
        code_stream.insert(code_stream.end(), codes.begin(), codes.end());
    int32_t pred = 0;
    int index = 0;
    uint64_t acc = 0;
    for (uint8_t code : code_stream) {
        int32_t step = kStepTable[index];
        int32_t diffq = step >> 3;
        if (code & 4)
            diffq += step;
        if (code & 2)
            diffq += step >> 1;
        if (code & 1)
            diffq += step >> 2;
        if (code & 8)
            pred -= diffq;
        else
            pred += diffq;
        pred = std::clamp(pred, -32768, 32767);
        index = std::clamp(index + kIndexTable[code], 0, 88);
        acc += static_cast<uint32_t>(pred) & 0xffff;
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("codes");
    data.bytes(codes);
    data.align(4);
    emitAdpcmTables(data);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r2, 0\n"          // pred
           "        li   r3, 0\n"          // index
           "        li   r4, 0\n"          // acc
        << "        li   r16, " << passes << "\n"
        << "        la   r8, steptab\n"
           "        la   r9, idxtab\n"
           "pass:   la   r1, codes\n"
        << "        li   r5, " << n << "\n"
        << "loop:   lbu  r10, 0(r1)\n"     // code
           "        slli r11, r3, 2\n"
           "        add  r11, r11, r8\n"
           "        lw   r11, 0(r11)\n"    // step
        << kAdpcmReconstruct << "\n"
        << "        li   r13, 65535\n"
           "        and  r15, r2, r13\n"
           "        add  r4, r4, r15\n"
           "        addi r1, r1, 1\n"
           "        addi r5, r5, -1\n"
           "        bnez r5, loop\n"
           "        addi r16, r16, -1\n"
           "        bnez r16, pass\n"
           "        la   r14, result\n"
           "        sd   r4, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// jpeg_like: two-pass integer 8x8 DCT over many blocks.
// ------------------------------------------------------------------
KernelBuild
jpegLike(int variant, bool alt)
{
    Rng rng(kernelSeed("jpeg_like", variant, alt));
    const unsigned blocks_n[3] = {90, 110, 130};
    unsigned blocks = blocks_n[variant] + (alt ? 20 : 0);

    // Fixed-point DCT-II coefficients, <<7.
    std::vector<int32_t> coef(64);
    for (int k = 0; k < 8; ++k) {
        double a = k == 0 ? std::sqrt(0.125) : 0.5;
        for (int n = 0; n < 8; ++n) {
            coef[k * 8 + n] = static_cast<int32_t>(std::lround(
                a * std::cos((2 * n + 1) * k * M_PI / 16.0) * 128.0));
        }
    }

    std::vector<int32_t> pixels(blocks * 64);
    for (auto &p : pixels)
        p = static_cast<int32_t>(rng.range(-128, 127));

    // Reference: out[k][r] = sum_n in[r][n]*coef[k][n] >> 7, applied
    // twice (the transpose-store makes two row passes a full 2-D DCT).
    auto pass = [&](const int32_t *in, int32_t *out) {
        for (int r = 0; r < 8; ++r) {
            for (int k = 0; k < 8; ++k) {
                int64_t t = 0;
                for (int n = 0; n < 8; ++n)
                    t += static_cast<int64_t>(in[r * 8 + n]) *
                         coef[k * 8 + n];
                out[k * 8 + r] = static_cast<int32_t>(t >> 7);
            }
        }
    };
    uint64_t acc = 0;
    std::vector<int32_t> tmp(64), out_blk(64);
    for (unsigned b = 0; b < blocks; ++b) {
        pass(&pixels[b * 64], tmp.data());
        pass(tmp.data(), out_blk.data());
        for (int i = 0; i < 64; ++i)
            acc += static_cast<uint64_t>(
                static_cast<uint32_t>(out_blk[i]) & 0xffff);
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    std::vector<uint32_t> cw(64), pw(pixels.size());
    for (int i = 0; i < 64; ++i)
        cw[i] = static_cast<uint32_t>(coef[i]);
    for (size_t i = 0; i < pixels.size(); ++i)
        pw[i] = static_cast<uint32_t>(pixels[i]);
    data.label("coef");
    data.words(cw);
    data.label("pixels");
    data.words(pw);
    data.label("tmp");
    data.space(64 * 4);
    data.label("outblk");
    data.space(64 * 4);

    std::ostringstream src;
    src << data.str();
    // dctpass: r20 = in base, r21 = out base; clobbers r10-r19.
    src << "        .text\n"
           "main:   la   r1, pixels\n"
        << "        li   r2, " << blocks << "\n"
        << "        li   r3, 0\n"          // acc
           "        la   r4, coef\n"
           "blkloop:mov  r20, r1\n"
           "        la   r21, tmp\n"
           "        call dctpass\n"
           "        la   r20, tmp\n"
           "        la   r21, outblk\n"
           "        call dctpass\n"
           // accumulate outblk
           "        la   r10, outblk\n"
           "        li   r11, 64\n"
           "        li   r13, 65535\n"
           "accl:   lw   r12, 0(r10)\n"
           "        and  r12, r12, r13\n"
           "        add  r3, r3, r12\n"
           "        addi r10, r10, 4\n"
           "        addi r11, r11, -1\n"
           "        bnez r11, accl\n"
           "        addi r1, r1, 256\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, blkloop\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n"
           // --- one DCT pass with transpose store ---
           "dctpass:li   r10, 0\n"         // r
           "rloop:  li   r11, 0\n"         // k
           "kloop:  li   r12, 0\n"         // t
           "        li   r13, 0\n"         // n
           "        slli r14, r10, 5\n"    // r*32
           "        add  r14, r14, r20\n"  // in row ptr
           "        slli r15, r11, 5\n"
           "        add  r15, r15, r4\n"   // coef row ptr
           "nloop:  lw   r16, 0(r14)\n"
           "        lw   r17, 0(r15)\n"
           "        mul  r16, r16, r17\n"
           "        add  r12, r12, r16\n"
           "        addi r14, r14, 4\n"
           "        addi r15, r15, 4\n"
           "        addi r13, r13, 1\n"
           "        li   r18, 8\n"
           "        blt  r13, r18, nloop\n"
           "        srai r12, r12, 7\n"
           "        slli r18, r11, 5\n"    // out[k*8+r]
           "        slli r19, r10, 2\n"
           "        add  r18, r18, r19\n"
           "        add  r18, r18, r21\n"
           "        sw   r12, 0(r18)\n"
           "        addi r11, r11, 1\n"
           "        li   r18, 8\n"
           "        blt  r11, r18, kloop\n"
           "        addi r10, r10, 1\n"
           "        li   r18, 8\n"
           "        blt  r10, r18, rloop\n"
           "        ret\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// epic_like: multi-level Haar wavelet decomposition.
// ------------------------------------------------------------------
KernelBuild
epicLike(int variant, bool alt)
{
    Rng rng(kernelSeed("epic_like", variant, alt));
    const unsigned sizes[3] = {4096, 6144, 8192};
    unsigned n = sizes[variant] + (alt ? 2048 : 0);
    const unsigned repeats = 3;

    std::vector<int32_t> x(n);
    int32_t v = 0;
    for (auto &s : x) {
        v += static_cast<int32_t>(rng.range(-50, 50));
        s = v;
    }

    // Reference: the 3-level decomposition applied `repeats` times to
    // the evolving (cache-warm) buffer.
    std::vector<int32_t> buf = x;
    for (unsigned rep = 0; rep < repeats; ++rep) {
        unsigned len = n;
        for (int level = 0; level < 3; ++level) {
            std::vector<int32_t> tmp(len);
            for (unsigned i = 0; i < len / 2; ++i) {
                int32_t a = buf[2 * i], b = buf[2 * i + 1];
                tmp[i] = (a + b) >> 1;
                tmp[len / 2 + i] = a - b;
            }
            std::copy(tmp.begin(), tmp.end(), buf.begin());
            len /= 2;
        }
    }
    uint64_t acc = 0;
    for (unsigned i = 0; i < n; ++i)
        acc += static_cast<uint32_t>(buf[i]) & 0xfffff;

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    std::vector<uint32_t> xw(n);
    for (unsigned i = 0; i < n; ++i)
        xw[i] = static_cast<uint32_t>(x[i]);
    data.label("buf");
    data.words(xw);
    data.label("tmp");
    data.space(4ull * n);

    std::ostringstream body;
    body << "        .text\n"
         << "main:   li   r15, " << repeats << "\n"
         << "rep:    li   r1, " << n << "\n"
         << "        li   r2, 3\n"
            "level:  la   r3, buf\n"
            "        la   r4, tmp\n"
            "        srli r5, r1, 1\n"       // half
            "        slli r6, r5, 2\n"
            "        add  r6, r6, r4\n"      // hi ptr = tmp + half*4
            "        mov  r7, r4\n"          // lo ptr
            "        mov  r8, r5\n"          // counter
            // Unrolled x2: consecutive pairs are independent.
            "pair:   lw   r9, 0(r3)\n"
            "        lw   r10, 4(r3)\n"
            "        lw   r13, 8(r3)\n"
            "        lw   r14, 12(r3)\n"
            "        add  r11, r9, r10\n"
            "        srai r11, r11, 1\n"
            "        sw   r11, 0(r7)\n"
            "        sub  r12, r9, r10\n"
            "        sw   r12, 0(r6)\n"
            "        add  r11, r13, r14\n"
            "        srai r11, r11, 1\n"
            "        sw   r11, 4(r7)\n"
            "        sub  r12, r13, r14\n"
            "        sw   r12, 4(r6)\n"
            "        addi r3, r3, 16\n"
            "        addi r7, r7, 8\n"
            "        addi r6, r6, 8\n"
            "        addi r8, r8, -2\n"
            "        bgt  r8, r0, pair\n"
            // copy tmp[0..len) back to buf
            "        la   r3, buf\n"
            "        la   r4, tmp\n"
            "        mov  r8, r1\n"
            "copy:   lw   r9, 0(r4)\n"
            "        sw   r9, 0(r3)\n"
            "        addi r3, r3, 4\n"
            "        addi r4, r4, 4\n"
            "        addi r8, r8, -1\n"
            "        bnez r8, copy\n"
            "        srli r1, r1, 1\n"
            "        addi r2, r2, -1\n"
            "        bnez r2, level\n"
            "        addi r15, r15, -1\n"
            "        bnez r15, rep\n"
            // accumulate
            "        la   r3, buf\n"
         << "        li   r8, " << n << "\n"
         << "        li   r5, 0\n"
            "        li   r13, 1048575\n"
            "accl:   lw   r9, 0(r3)\n"
            "        and  r9, r9, r13\n"
            "        add  r5, r5, r9\n"
            "        addi r3, r3, 4\n"
            "        addi r8, r8, -1\n"
            "        bnez r8, accl\n"
            "        la   r14, result\n"
            "        sd   r5, 0(r14)\n"
            "        halt\n";

    KernelBuild out;
    out.source = data.str() + body.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// mpeg_like: sum-of-absolute-differences motion estimation.
// ------------------------------------------------------------------
KernelBuild
mpegLike(int variant, bool alt)
{
    Rng rng(kernelSeed("mpeg_like", variant, alt));
    const unsigned frames_n[3] = {4, 5, 6};
    unsigned frames = frames_n[variant] + (alt ? 1 : 0);
    const unsigned rw = 64, bw = 16, grid = 8;

    std::vector<uint8_t> ref(frames * rw * rw);
    for (auto &p : ref)
        p = static_cast<uint8_t>(rng.below(256));
    std::vector<uint8_t> cur(frames * bw * bw);
    for (unsigned f = 0; f < frames; ++f) {
        // Current block = noisy copy of a random ref position.
        unsigned ox = 2 + static_cast<unsigned>(rng.below(grid));
        unsigned oy = 2 + static_cast<unsigned>(rng.below(grid));
        for (unsigned y = 0; y < bw; ++y) {
            for (unsigned x = 0; x < bw; ++x) {
                int v = ref[f * rw * rw + (y + oy) * rw + (x + ox)] +
                        static_cast<int>(rng.range(-6, 6));
                cur[f * bw * bw + y * bw + x] =
                    static_cast<uint8_t>(std::clamp(v, 0, 255));
            }
        }
    }

    // Reference.
    uint64_t acc = 0;
    for (unsigned f = 0; f < frames; ++f) {
        uint64_t best = ~0ull;
        unsigned best_pos = 0;
        for (unsigned dy = 0; dy < grid; ++dy) {
            for (unsigned dx = 0; dx < grid; ++dx) {
                uint64_t sad = 0;
                for (unsigned y = 0; y < bw; ++y) {
                    for (unsigned x = 0; x < bw; ++x) {
                        int a = ref[f * rw * rw + (y + dy) * rw + x + dx];
                        int b = cur[f * bw * bw + y * bw + x];
                        sad += static_cast<uint64_t>(a > b ? a - b : b - a);
                    }
                }
                if (sad < best) {
                    best = sad;
                    best_pos = dy * grid + dx;
                }
            }
        }
        acc += best * 100 + best_pos;
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    data.label("ref");
    data.bytes(ref);
    data.align(4);
    data.label("cur");
    data.bytes(cur);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r1, 0\n"            // frame
        << "        li   r2, " << frames << "\n"
        << "        li   r3, 0\n"            // acc
           "frloop: mov  r4, r1\n"
           "        muli r4, r4, 4096\n"     // f*64*64
           "        la   r5, ref\n"
           "        add  r4, r4, r5\n"       // ref base
           "        mov  r6, r1\n"
           "        muli r6, r6, 256\n"
           "        la   r5, cur\n"
           "        add  r6, r6, r5\n"       // cur base
           "        li   r7, -1\n"           // best (max uint)
           "        li   r8, 0\n"            // best_pos
           "        li   r9, 0\n"            // pos = dy*8+dx
           "posloop:srli r10, r9, 3\n"       // dy
           "        andi r11, r9, 7\n"       // dx
           "        slli r10, r10, 6\n"      // dy*64
           "        add  r10, r10, r11\n"
           "        add  r10, r10, r4\n"     // ref + dy*64 + dx
           "        mov  r11, r6\n"          // cur ptr
           "        li   r12, 0\n"           // sad
           "        li   r13, 16\n"          // y counter
           "yloop:  li   r14, 16\n"          // x counter
           "        mov  r15, r10\n"
           "        mov  r16, r11\n"
           // Branchless |a-b| (as an if-converting compiler emits),
           // unrolled x2: independent pixel pairs expose ILP.
           "xloop:  lbu  r17, 0(r15)\n"
           "        lbu  r18, 0(r16)\n"
           "        sub  r19, r17, r18\n"
           "        srai r17, r19, 63\n"
           "        xor  r19, r19, r17\n"
           "        sub  r19, r19, r17\n"
           "        add  r12, r12, r19\n"
           "        lbu  r17, 1(r15)\n"
           "        lbu  r18, 1(r16)\n"
           "        sub  r19, r17, r18\n"
           "        srai r17, r19, 63\n"
           "        xor  r19, r19, r17\n"
           "        sub  r19, r19, r17\n"
           "        add  r12, r12, r19\n"
           "        addi r15, r15, 2\n"
           "        addi r16, r16, 2\n"
           "        addi r14, r14, -2\n"
           "        bnez r14, xloop\n"
           "        addi r10, r10, 64\n"
           "        addi r11, r11, 16\n"
           "        addi r13, r13, -1\n"
           "        bnez r13, yloop\n"
           "        bgeu r12, r7, notbest\n"
           "        mov  r7, r12\n"
           "        mov  r8, r9\n"
           "notbest:addi r9, r9, 1\n"
           "        li   r13, 64\n"
           "        blt  r9, r13, posloop\n"
           "        muli r7, r7, 100\n"
           "        add  r3, r3, r7\n"
           "        add  r3, r3, r8\n"
           "        addi r1, r1, 1\n"
           "        blt  r1, r2, frloop\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// g721_like: sign-sign LMS adaptive predictor.
// ------------------------------------------------------------------
KernelBuild
g721Like(int variant, bool alt)
{
    Rng rng(kernelSeed("g721_like", variant, alt));
    const unsigned sizes[3] = {2200, 2700, 3200};
    unsigned n = sizes[variant] + (alt ? 500 : 0);
    std::vector<int32_t> input = makeWaveform(rng, n);

    // Reference.
    int64_t w[6] = {0, 0, 0, 0, 0, 0};
    int64_t h[6] = {0, 0, 0, 0, 0, 0};
    uint64_t acc = 0;
    for (unsigned i = 0; i < n; ++i) {
        int64_t pred = 0;
        for (int t = 0; t < 6; ++t)
            pred += w[t] * h[t];
        pred >>= 8;
        int64_t err = input[i] - pred;
        for (int t = 0; t < 6; ++t) {
            int64_t step = h[t] >> 4;
            if (err > 0)
                w[t] += step;
            else
                w[t] -= step;
        }
        for (int t = 5; t > 0; --t)
            h[t] = h[t - 1];
        h[0] = input[i];
        acc += static_cast<uint64_t>(err & 0xffff);
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    std::vector<uint32_t> iw(n);
    for (unsigned i = 0; i < n; ++i)
        iw[i] = static_cast<uint32_t>(input[i]);
    data.label("input");
    data.words(iw);
    data.label("wtab");
    data.space(6 * 8);
    data.label("htab");
    data.space(6 * 8);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   la   r1, input\n"
        << "        li   r2, " << n << "\n"
        << "        la   r3, wtab\n"
           "        la   r4, htab\n"
           "        li   r5, 0\n"           // acc
           "        li   r20, 65535\n"
           "loop:   lw   r6, 0(r1)\n"       // sample
           // pred = sum w[t]*h[t]
           "        li   r7, 0\n"
           "        li   r8, 0\n"           // t
           "pl:     slli r9, r8, 3\n"
           "        add  r10, r9, r3\n"
           "        ld   r11, 0(r10)\n"
           "        add  r10, r9, r4\n"
           "        ld   r12, 0(r10)\n"
           "        mul  r11, r11, r12\n"
           "        add  r7, r7, r11\n"
           "        addi r8, r8, 1\n"
           "        li   r9, 6\n"
           "        blt  r8, r9, pl\n"
           "        srai r7, r7, 8\n"
           "        sub  r13, r6, r7\n"     // err
           // weight update
           "        li   r8, 0\n"
           "wl:     slli r9, r8, 3\n"
           "        add  r10, r9, r4\n"
           "        ld   r12, 0(r10)\n"
           "        srai r12, r12, 4\n"
           "        add  r10, r9, r3\n"
           "        ld   r11, 0(r10)\n"
           "        ble  r13, r0, wneg\n"
           "        add  r11, r11, r12\n"
           "        b    wst\n"
           "wneg:   sub  r11, r11, r12\n"
           "wst:    sd   r11, 0(r10)\n"
           "        addi r8, r8, 1\n"
           "        li   r9, 6\n"
           "        blt  r8, r9, wl\n"
           // history shift
           "        ld   r11, 32(r4)\n"
           "        sd   r11, 40(r4)\n"
           "        ld   r11, 24(r4)\n"
           "        sd   r11, 32(r4)\n"
           "        ld   r11, 16(r4)\n"
           "        sd   r11, 24(r4)\n"
           "        ld   r11, 8(r4)\n"
           "        sd   r11, 16(r4)\n"
           "        ld   r11, 0(r4)\n"
           "        sd   r11, 8(r4)\n"
           "        sd   r6, 0(r4)\n"
           "        and  r13, r13, r20\n"
           "        add  r5, r5, r13\n"
           "        addi r1, r1, 4\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, loop\n"
           "        la   r14, result\n"
           "        sd   r5, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

// ------------------------------------------------------------------
// gsm_like: long-term-prediction lag search (correlations + max).
// ------------------------------------------------------------------
KernelBuild
gsmLike(int variant, bool alt)
{
    Rng rng(kernelSeed("gsm_like", variant, alt));
    const unsigned frames_n[3] = {5, 6, 7};
    unsigned frames = frames_n[variant] + (alt ? 1 : 0);
    const unsigned flen = 160, min_lag = 40, max_lag = 120;

    std::vector<int32_t> x(frames * flen);
    int32_t v = 0;
    for (auto &s : x) {
        v += static_cast<int32_t>(rng.range(-80, 80));
        v = std::clamp(v, -2000, 2000);
        s = v;
    }

    // Reference: per frame, best lag maximising sum x[i+lag]*x[i].
    uint64_t acc = 0;
    for (unsigned f = 0; f < frames; ++f) {
        const int32_t *fr = &x[f * flen];
        int64_t best = INT64_MIN;
        unsigned best_lag = min_lag;
        for (unsigned lag = min_lag; lag <= max_lag; ++lag) {
            int64_t c = 0;
            for (unsigned i = 0; i + lag < flen; ++i)
                c += static_cast<int64_t>(fr[i + lag]) * fr[i];
            if (c > best) {
                best = c;
                best_lag = lag;
            }
        }
        acc += best_lag + (static_cast<uint64_t>(best) & 0xffffff);
    }

    DataBuilder data;
    data.label("result");
    data.dwords({0});
    std::vector<uint32_t> xw(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        xw[i] = static_cast<uint32_t>(x[i]);
    data.label("x");
    data.words(xw);

    std::ostringstream src;
    src << data.str();
    src << "        .text\n"
           "main:   li   r1, 0\n"            // frame
        << "        li   r2, " << frames << "\n"
        << "        li   r3, 0\n"            // acc
           "frloop: mov  r4, r1\n"
           "        muli r4, r4, 640\n"      // flen*4
           "        la   r5, x\n"
           "        add  r4, r4, r5\n"       // frame base
           "        li   r6, -4611686018427387904\n" // best
        << "        li   r7, " << min_lag << "\n"    // best_lag
        << "        li   r8, " << min_lag << "\n"    // lag
        << "lagloop:li   r9, 0\n"             // c
           "        li   r10, 0\n"            // i
        << "        li   r11, " << flen << "\n"
        << "        sub  r11, r11, r8\n"      // count = flen - lag
           "        slli r12, r8, 2\n"
           "        add  r12, r12, r4\n"      // &fr[lag]
           "        mov  r13, r4\n"           // &fr[0]
           "corr:   lw   r14, 0(r12)\n"
           "        lw   r15, 0(r13)\n"
           "        mul  r14, r14, r15\n"
           "        add  r9, r9, r14\n"
           "        addi r12, r12, 4\n"
           "        addi r13, r13, 4\n"
           "        addi r10, r10, 1\n"
           "        blt  r10, r11, corr\n"
           "        ble  r9, r6, nomax\n"
           "        mov  r6, r9\n"
           "        mov  r7, r8\n"
           "nomax:  addi r8, r8, 1\n"
        << "        li   r14, " << max_lag << "\n"
        << "        ble  r8, r14, lagloop\n"
           "        li   r15, 16777215\n"
           "        and  r6, r6, r15\n"
           "        add  r3, r3, r6\n"
           "        add  r3, r3, r7\n"
           "        addi r1, r1, 1\n"
           "        blt  r1, r2, frloop\n"
           "        la   r14, result\n"
           "        sd   r3, 0(r14)\n"
           "        halt\n";

    KernelBuild out;
    out.source = src.str();
    out.expected = acc;
    out.memSize = 1ull << 20;
    return out;
}

} // namespace

const std::vector<KernelDef> &
mediaKernels()
{
    static const std::vector<KernelDef> defs = {
        {"adpcm_c", "media", adpcmC},
        {"adpcm_d", "media", adpcmD},
        {"jpeg_like", "media", jpegLike},
        {"epic_like", "media", epicLike},
        {"mpeg_like", "media", mpegLike},
        {"g721_like", "media", g721Like},
        {"gsm_like", "media", gsmLike},
    };
    return defs;
}

} // namespace mg::workloads
