#include "workloads/workload.h"

#include "assembler/assembler.h"
#include "common/logging.h"
#include "workloads/kernel_support.h"

namespace mg::workloads
{

std::string
WorkloadSpec::name() const
{
    return kernel + "." + std::to_string(variant);
}

uint64_t
kernelSeed(const char *name, int variant, bool alt)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char *p = name; *p; ++p) {
        h ^= static_cast<uint64_t>(*p);
        h *= 0x100000001b3ull;
    }
    h ^= static_cast<uint64_t>(variant + 1) * 0x9e3779b97f4a7c15ull;
    if (alt)
        h ^= 0x5bf03635ull;
    return h ? h : 1;
}

namespace
{

const std::vector<KernelDef> &
allKernels()
{
    static const auto *defs = [] {
        auto *v = new std::vector<KernelDef>();
        for (const auto &k : specKernels())
            v->push_back(k);
        for (const auto &k : mediaKernels())
            v->push_back(k);
        for (const auto &k : commKernels())
            v->push_back(k);
        for (const auto &k : mibenchKernels())
            v->push_back(k);
        for (const auto &k : cbenchKernels())
            v->push_back(k);
        return v;
    }();
    return *defs;
}

const KernelDef &
kernelByName(const std::string &name)
{
    for (const auto &k : allKernels()) {
        if (name == k.name)
            return k;
    }
    mg_fatal("unknown kernel '%s'", name.c_str());
}

} // namespace

const std::vector<WorkloadSpec> &
workloadList()
{
    static const auto *list = [] {
        auto *v = new std::vector<WorkloadSpec>();
        for (const auto &k : allKernels()) {
            for (int variant = 0; variant < 3; ++variant)
                v->push_back(WorkloadSpec{k.name, k.suite, variant});
        }
        return v;
    }();
    return *list;
}

std::vector<WorkloadSpec>
suiteWorkloads(const std::string &suite)
{
    std::vector<WorkloadSpec> out;
    for (const auto &w : workloadList()) {
        if (w.suite == suite)
            out.push_back(w);
    }
    return out;
}

std::optional<WorkloadSpec>
findWorkload(const std::string &name)
{
    for (const auto &w : workloadList()) {
        if (w.name() == name)
            return w;
    }
    return std::nullopt;
}

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> out;
    for (const auto &k : allKernels())
        out.emplace_back(k.name);
    return out;
}

BuiltWorkload
buildWorkload(const WorkloadSpec &spec, bool alt_input)
{
    const KernelDef &def = kernelByName(spec.kernel);
    mg_assert(spec.variant >= 0 && spec.variant < 3,
              "bad variant %d for kernel '%s'", spec.variant,
              spec.kernel.c_str());
    KernelBuild kb = def.build(spec.variant, alt_input);

    assembler::AssembleOptions opts;
    opts.name = spec.name() + (alt_input ? "+alt" : "");
    opts.dataBase = kDataBase;
    opts.memSize = kb.memSize;

    BuiltWorkload out;
    out.program = assembler::assemble(kb.source, opts);
    out.expected = kb.expected;
    return out;
}

} // namespace mg::workloads
