#include "sim/journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "trace/stats_parse.h"

namespace mg::sim::journal
{

std::string
runKey(const RunRequest &req, const std::string &sim_version)
{
    std::string key = req.workload.name();
    if (req.altInput)
        key += "#alt";
    key += '|';
    key += req.config.name.empty() ? "?" : req.config.name;
    key += '|';
    key += req.selector ? minigraph::nameOf(*req.selector) : "none";
    if (req.profileConfig) {
        key += "|profile=";
        key += req.profileConfig->name.empty() ? "?"
                                               : req.profileConfig->name;
    }
    key += "|budget=" + std::to_string(req.templateBudget);
    if (req.profileFromAltInput)
        key += "|cross-input";
    if (req.chosen)
        key += "|chosen=" + std::to_string(req.chosen->size());
    key += "|sim=" + sim_version;
    return key;
}

LoadResult
load(const std::string &path)
{
    LoadResult out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out;
    out.existed = true;

    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    size_t lineno = 0;
    size_t pos = 0;
    auto drop = [&](const std::string &why) {
        ++out.dropped;
        if (!out.warning.empty())
            out.warning += "; ";
        out.warning += "line " + std::to_string(lineno) + ": " + why;
    };

    while (pos < text.size()) {
        ++lineno;
        size_t nl = text.find('\n', pos);
        bool truncated = nl == std::string::npos;
        std::string line = text.substr(
            pos, truncated ? std::string::npos : nl - pos);
        pos = truncated ? text.size() : nl + 1;

        if (line.empty())
            continue;
        if (truncated) {
            // The writer terminates every entry with '\n'; a missing
            // one means the host died mid-write.  Resume from the
            // last complete entry.
            drop("truncated final entry (no newline)");
            continue;
        }
        size_t tab = line.find('\t');
        if (tab == std::string::npos || tab == 0 ||
            tab + 1 >= line.size()) {
            drop("malformed entry (no key/stats separator)");
            continue;
        }
        std::string key = line.substr(0, tab);
        std::string stats = line.substr(tab + 1);
        trace::ParsedStats parsed;
        if (std::string err = trace::parseStatsJson(stats, parsed);
            !err.empty()) {
            drop("invalid stats JSON (" + err + ")");
            continue;
        }
        if (parsed.isError) {
            // Only completed runs belong in a journal.
            drop("error record for key '" + key + "'");
            continue;
        }
        out.entries[key] = std::move(stats);
    }
    return out;
}

Writer::~Writer()
{
    if (file)
        std::fclose(file);
}

std::string
Writer::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu);
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
    file = std::fopen(path.c_str(), "ab");
    if (!file)
        return "cannot open journal '" + path +
               "': " + std::strerror(errno);
    return "";
}

void
Writer::append(const std::string &key, const std::string &stats_json)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!file)
        return;
    std::fputs(key.c_str(), file);
    std::fputc('\t', file);
    std::fputs(stats_json.c_str(), file);
    std::fputc('\n', file);
    // fflush hands the entry to the kernel (survives SIGKILL of this
    // process); fsync makes it durable on the device before append()
    // returns.  The per-entry fsync is what makes the loader's
    // truncation handling sound after a power-loss-style kill: with
    // ordered appends, a torn entry can only ever be the *final*
    // line — there is no window where entry N is a hole on disk while
    // a later complete entry N+1 already is, which --resume would
    // misread as "N never ran" even though its result was reported.
    // One fsync per completed simulation (milliseconds of work at
    // minimum) is noise; batches that cannot afford it can simply not
    // pass --journal.
    std::fflush(file);
    ::fsync(fileno(file));
}

} // namespace mg::sim::journal
