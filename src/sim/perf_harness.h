/**
 * @file
 * Self-benchmarking harness: `mgsim perf` and tools/perf.sh.
 *
 * Runs a pinned, deterministic subset of the workload x selector
 * matrix and reports, per PR, the simulator's own performance:
 * simulated cycles per second, wall time per run, end-to-end batch
 * wall time, and peak RSS — machine-readable (BENCH_<pr>.json) and
 * checked in so every later PR inherits a trajectory (docs/PERF.md).
 *
 * Determinism contract: the *simulation* outputs (per-cell simulated
 * cycle counts and stats-JSON lines) are bit-identical across runs
 * and job counts; only the wall-time and RSS fields vary.  The
 * perf_determinism test runs the harness twice and compares exactly
 * the deterministic fields; BENCH files record a hash of each cell's
 * stats line so a bench result can be audited against the golden
 * snapshots without embedding hundreds of stats lines.
 *
 * A bench file can embed the *baseline* measurements it is compared
 * against (see PerfBaseline): `mgsim perf --baseline OLD.json` copies
 * OLD's headline numbers into the new report and computes the
 * end-to-end speedup, so a claim like "3x faster" is reproducible
 * from one self-contained artefact.
 */

#ifndef MG_SIM_PERF_HARNESS_H
#define MG_SIM_PERF_HARNESS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mg::sim
{

/** One cell of the benchmark matrix. */
struct PerfCell
{
    std::string workload;
    std::string config;
    std::string selector; ///< registry name; "none" = baseline
};

/** Measurements for one executed cell. */
struct PerfRun
{
    PerfCell cell;
    bool ok = false;
    std::string error; ///< failure message when !ok

    // Deterministic fields (bit-identical across harness runs).
    uint64_t simCycles = 0;
    uint64_t statsHash = 0;     ///< FNV-1a 64 of the stats-JSON line
    std::string statsJsonLine;  ///< in-memory only (not in the JSON)

    // Nondeterministic fields (excluded from determinism checks).
    double wallSec = 0.0;
};

/** Baseline headline numbers embedded in a bench report. */
struct PerfBaseline
{
    std::string label; ///< e.g. "pre-optimization (PR 6)"
    double batchWallSec = 0.0;
    uint64_t totalSimCycles = 0;
    double simCyclesPerSec = 0.0;
    long peakRssKb = 0;
};

/** One full harness execution. */
struct PerfReport
{
    unsigned pr = 0;          ///< PR number (BENCH_<pr>.json)
    std::string subset;       ///< "pinned" | "smoke" | "full"
    unsigned jobs = 1;
    std::vector<PerfRun> runs;

    // End-to-end numbers (whole batch, shared-context effects
    // included).
    double batchWallSec = 0.0;
    uint64_t totalSimCycles = 0;
    double simCyclesPerSec = 0.0;
    long peakRssKb = 0;

    std::optional<PerfBaseline> baseline;

    /** End-to-end speedup vs the baseline (0 if none embedded). */
    double speedup() const;

    /** True if every run succeeded. */
    bool allOk() const;
};

/**
 * The pinned benchmark subset: every ".0"-variant kernel crossed
 * with the five paper policies (none, struct-all, struct-bounded,
 * slack-profile, slack-dynamic) on the reduced machine.  Order is
 * fixed (workload-major) and documented in docs/PERF.md; changing it
 * invalidates wall-time comparisons across PRs.
 */
std::vector<PerfCell> perfPinnedCells();

/** CI smoke subset: the golden-test workloads x the five policies. */
std::vector<PerfCell> perfSmokeCells();

/** The full workload x selector matrix (audit sweeps). */
std::vector<PerfCell> perfFullCells();

/** Resolve a subset name; empty result + err set on unknown name. */
std::vector<PerfCell> perfCellsForSubset(const std::string &name,
                                         std::string &err);

/**
 * Execute the cells (sequentially when jobs == 1 — the pinned
 * measurement mode — else through a Runner pool) and measure.
 * Contexts are shared across cells of the same workload, exactly as
 * in `mgsim batch`.
 */
PerfReport runPerf(const std::vector<PerfCell> &cells, unsigned jobs,
                   unsigned pr, const std::string &subset);

/** Serialize a report as the BENCH_<pr>.json document. */
std::string benchJson(const PerfReport &report);

/**
 * Parse a BENCH_*.json document (schema "mg-bench-v1") back into a
 * report.  statsJsonLine is not recoverable (only its hash is
 * stored).  @return "" on success, else the first problem found.
 */
std::string parseBenchJson(const std::string &text, PerfReport &out);

/** FNV-1a 64-bit hash (stats-line digests in bench files). */
uint64_t fnv1a64(const std::string &text);

} // namespace mg::sim

#endif // MG_SIM_PERF_HARNESS_H
