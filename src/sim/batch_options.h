/**
 * @file
 * sim::BatchOptions: the unified batch-execution option surface.
 *
 * PRs 1-4 accreted two parallel option channels — environment
 * variables (MG_JOBS, MG_ISOLATE, MG_TIMEOUT, MG_RETRIES, MG_FAULTS,
 * MG_JSON, MG_PROGRESS, MG_CHECKLEVEL) and per-tool command-line
 * flags (--jobs/--isolate/--timeout/--retries/--backoff/--journal/
 * --resume/--inject-fault) — each parsed ad hoc at its call site.
 * This header is now the *single parse point* for all of them:
 *
 *  - `BatchOptions::fromEnv()` reads every batch-relevant environment
 *    variable exactly once, with validation and warnings;
 *  - `applyFlag()` layers command-line flags on top with explicit
 *    flag-over-env precedence (a flag always wins; the provenance of
 *    every field is tracked and reported);
 *  - `validate()` performs the cross-field checks (e.g. `--timeout`
 *    requires `--isolate`) at parse time, before any job runs;
 *  - `describe()` dumps the resolved options (value + provenance per
 *    field) as one JSON object, used by `--json` output so a
 *    machine-readable batch records exactly how it was configured;
 *  - `runnerOptions()` converts to the Runner's consumption struct.
 *
 * Runner and the benches consume resolved options from here instead
 * of re-reading environment variables (see resolveRunnerOptions()).
 */

#ifndef MG_SIM_BATCH_OPTIONS_H
#define MG_SIM_BATCH_OPTIONS_H

#include <optional>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "uarch/config.h"

namespace mg::sim
{

struct RunnerOptions;

/** Where a BatchOptions field's resolved value came from. */
enum class OptionSource : uint8_t
{
    Default, ///< built-in default
    Env,     ///< environment variable
    Flag,    ///< command-line flag (highest precedence)
};

/** Registry name of an option source ("default" | "env" | "flag"). */
const char *optionSourceName(OptionSource src);

/**
 * The consolidated batch option set.  Construct with fromEnv(), then
 * layer flags with applyFlag(); check validate() before use.
 */
struct BatchOptions
{
    /** Worker threads (resolved: never 0 after fromEnv()). */
    unsigned jobs = 0;

    /** Machine-readable output (one JSON object per job). */
    bool json = false;

    /** Print "[phase] done/total" progress lines to stderr. */
    bool progress = false;

    /** Fork-per-run sandboxing (docs/ROBUSTNESS.md). */
    bool isolate = false;

    /** Per-run watchdog seconds (0 = off; requires isolate). */
    double timeoutSec = 0.0;

    /** Extra re-runs of transient failures. */
    unsigned retries = 0;

    /** Base retry backoff seconds, doubling per attempt. */
    double backoffSec = 0.05;

    /** Journal file for completed runs ("" = off). */
    std::string journal;

    /** Replay completed runs from `journal` instead of re-running. */
    bool resume = false;

    /** Fault-injection spec (parsed; see sim/fault.h). */
    std::optional<FaultSpec> fault;

    /** Raw fault spec text (for describe()). */
    std::string faultSpec;

    /** Invariant-audit level applied to every simulated core. */
    uarch::CheckLevel checkLevel = uarch::CheckLevel::Off;

    /** Per-field provenance (flag-over-env precedence audit trail). */
    struct Sources
    {
        OptionSource jobs = OptionSource::Default;
        OptionSource json = OptionSource::Default;
        OptionSource progress = OptionSource::Default;
        OptionSource isolate = OptionSource::Default;
        OptionSource timeout = OptionSource::Default;
        OptionSource retries = OptionSource::Default;
        OptionSource backoff = OptionSource::Default;
        OptionSource journal = OptionSource::Default;
        OptionSource resume = OptionSource::Default;
        OptionSource fault = OptionSource::Default;
        OptionSource checkLevel = OptionSource::Default;
    } src;

    /**
     * Resolve the environment layer: defaults overridden by MG_JOBS,
     * MG_JSON, MG_PROGRESS, MG_ISOLATE, MG_TIMEOUT, MG_RETRIES,
     * MG_BACKOFF, MG_JOURNAL, MG_RESUME, MG_FAULTS and MG_CHECKLEVEL.
     * Invalid values warn and fall back to the default (matching the
     * historical per-site behaviour).
     */
    static BatchOptions fromEnv();

    /**
     * Apply one command-line flag (highest precedence).
     *
     * @param flag   flag name including dashes (e.g. "--jobs")
     * @param value  the flag's argument ("" for boolean flags)
     * @param err    set to a usage complaint on a bad value
     * @retval true  the flag belongs to the batch option surface and
     *               was consumed (err empty) or rejected (err set)
     * @retval false not a batch flag (caller owns it)
     */
    bool applyFlag(const std::string &flag, const std::string &value,
                   std::string &err);

    /** True if applyFlag() would consume this flag name. */
    static bool ownsFlag(const std::string &flag);

    /**
     * Cross-field validation, run after all flags are applied so the
     * result is independent of flag order.
     * @return "" if consistent, else the usage complaint.
     */
    std::string validate() const;

    /**
     * One JSON object describing every resolved option and its
     * provenance, e.g.
     * {"jobs":{"value":4,"source":"flag"},...}; emitted by `--json`
     * batch output as the "options" record.
     */
    std::string describe() const;

    /** Convert to the Runner's option struct. */
    RunnerOptions runnerOptions() const;
};

/**
 * Fill any env-defaulted RunnerOptions fields (jobs == 0, unset
 * fault) from the environment layer.  This is the only call through
 * which Runner consults the environment; the parse itself lives in
 * BatchOptions::fromEnv().
 */
RunnerOptions resolveRunnerOptions(const RunnerOptions &opts);

/** The environment-resolved worker count (MG_JOBS, else all cores). */
unsigned envJobs();

} // namespace mg::sim

#endif // MG_SIM_BATCH_OPTIONS_H
