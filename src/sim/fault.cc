#include "sim/fault.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace mg::sim
{

namespace
{

/**
 * Updated at the end of every hooked cycle.  Plain relaxed atomic: a
 * fatal-signal handler reads it, and lock-free atomic loads/stores
 * are async-signal-safe.
 */
std::atomic<uint64_t> g_observedCycle{0};

[[noreturn]] void
fire(const FaultSpec &spec, uint64_t cycle)
{
    switch (spec.kind) {
    case FaultKind::Crash:
        // As close to a real native crash as we can make
        // deterministic: dies on SIGABRT without unwinding.
        std::abort();
    case FaultKind::Hang:
        for (;;)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
    case FaultKind::Oom:
        throw std::bad_alloc();
    case FaultKind::Corrupt:
        // Drive the audit path: raise the same CheckError the
        // invariant auditor raises on a genuine illegal state.
        checkFailImpl(__FILE__, __LINE__, "injected-corruption",
                      strprintf("injected state corruption at cycle "
                                "%llu (MG_FAULTS)",
                                static_cast<unsigned long long>(cycle)));
    }
    std::abort(); // unreachable
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Hang: return "hang";
    case FaultKind::Oom: return "oom";
    case FaultKind::Corrupt: return "corrupt";
    }
    return "?";
}

bool
FaultSpec::appliesTo(const std::string &run_key, unsigned attempt) const
{
    if (attempt >= firstAttempts)
        return false;
    return match.empty() || run_key.find(match) != std::string::npos;
}

std::optional<FaultSpec>
parseFaultSpec(const std::string &text, std::string &err)
{
    std::string body = trim(text);
    FaultSpec spec;

    // Trailing "!<attempts>".
    if (size_t bang = body.rfind('!'); bang != std::string::npos) {
        int64_t n = 0;
        if (!parseInt(body.substr(bang + 1), n) || n <= 0) {
            err = "bad fault attempt count in '" + text + "'";
            return std::nullopt;
        }
        spec.firstAttempts = static_cast<unsigned>(n);
        body = body.substr(0, bang);
    }

    // ":<match>" (first ':' — run keys never contain one).
    if (size_t colon = body.find(':'); colon != std::string::npos) {
        spec.match = body.substr(colon + 1);
        body = body.substr(0, colon);
    }

    // "@<cycle>".
    if (size_t at = body.find('@'); at != std::string::npos) {
        int64_t n = 0;
        if (!parseInt(body.substr(at + 1), n) || n <= 0) {
            err = "bad fault cycle in '" + text + "'";
            return std::nullopt;
        }
        spec.cycle = static_cast<uint64_t>(n);
        body = body.substr(0, at);
    }

    if (body == "crash") {
        spec.kind = FaultKind::Crash;
    } else if (body == "hang") {
        spec.kind = FaultKind::Hang;
    } else if (body == "oom") {
        spec.kind = FaultKind::Oom;
    } else if (body == "corrupt") {
        spec.kind = FaultKind::Corrupt;
    } else {
        err = "unknown fault kind '" + body +
              "' (want crash|hang|oom|corrupt)";
        return std::nullopt;
    }
    return spec;
}

std::function<void(uarch::Core &)>
makeFaultHook(const FaultSpec &spec)
{
    // Cycle counter shared across copies of the hook (std::function
    // copies its callable); one run installs exactly one hook.
    auto count = std::make_shared<uint64_t>(0);
    return [spec, count](uarch::Core &) {
        uint64_t c = ++*count;
        g_observedCycle.store(c, std::memory_order_relaxed);
        if (c == spec.cycle)
            fire(spec, c);
    };
}

std::function<void(uarch::Core &)>
makeCycleWatchHook(std::function<void(uarch::Core &)> inner)
{
    auto count = std::make_shared<uint64_t>(0);
    return [inner = std::move(inner), count](uarch::Core &core) {
        g_observedCycle.store(++*count, std::memory_order_relaxed);
        if (inner)
            inner(core);
    };
}

uint64_t
lastObservedCycle()
{
    return g_observedCycle.load(std::memory_order_relaxed);
}

void
resetObservedCycle()
{
    g_observedCycle.store(0, std::memory_order_relaxed);
}

} // namespace mg::sim
