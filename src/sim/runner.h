/**
 * @file
 * Parallel experiment runner: executes a batch of RunRequest jobs on
 * a fixed-size thread pool and returns RunResults in deterministic
 * submission order, regardless of completion order.
 *
 * The runner owns one ProgramContext per (workload, input-set) pair,
 * so per-program artefacts — execution counts, slack profiles,
 * baseline runs, candidate pools — are computed once and shared by
 * every job on that program.  The contexts' lazy caches are
 * internally locked (see sim/experiment.h), so two concurrent jobs on
 * the same program are safe.
 *
 * Determinism: each job is a pure function of its request (the
 * simulator has no global state and the caches only memoize
 * deterministic computations), so an N-thread run produces
 * bit-identical results to a 1-thread run of the same batch.
 *
 * Worker count: Options::jobs if non-zero, else the environment
 * layer (sim/batch_options.h: MG_JOBS, else all cores).  All
 * environment defaulting happens in resolveRunnerOptions() at
 * construction — the runner itself never reads env vars.
 *
 * Fault tolerance (docs/ROBUSTNESS.md): a failing job degrades to a
 * structured RunError in its result slot — it never takes down the
 * batch.  Opt-in layers: process isolation (fork-per-run sandbox),
 * per-run watchdog timeouts, retry with exponential backoff for
 * transient failures, and a journal enabling resume after a crash of
 * the batch process itself.
 */

#ifndef MG_SIM_RUNNER_H
#define MG_SIM_RUNNER_H

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.h"
#include "sim/fault.h"
#include "sim/journal.h"

namespace mg::sim
{

/**
 * Runner construction options (namespace-scope so it is complete
 * before the constructor's default argument needs it).
 */
struct RunnerOptions
{
    /** Worker threads; 0 = MG_JOBS env var, else all cores. */
    unsigned jobs = 0;

    /** Print "[phase] done/total" lines to stderr as jobs finish. */
    bool progress = false;

    /**
     * Execute every run in a forked sandbox (sim/supervisor.h): a
     * crash, hang, OOM, or CheckError in one run becomes a RunError
     * instead of killing the batch.  Each sandboxed run rebuilds its
     * program artefacts rather than sharing this runner's contexts.
     */
    bool isolate = false;

    /**
     * Default per-run watchdog timeout in seconds (0 = off); a
     * nonzero RunRequest::timeoutSec overrides it.  Enforced only
     * with `isolate` (a runaway in-process run cannot be killed
     * safely).
     */
    double timeoutSec = 0.0;

    /** Re-run a *transient* failure up to this many extra times. */
    unsigned retries = 0;

    /**
     * Base backoff before the first retry; doubles per attempt
     * (base, 2*base, 4*base, ...).  Deterministic by construction.
     */
    double backoffSec = 0.05;

    /**
     * Append completed runs (key + stats JSON) to this journal file
     * ("" = off); see sim/journal.h.
     */
    std::string journalPath{};

    /**
     * Load `journalPath` first and replay already-completed runs
     * from it instead of re-executing them (corrupt journal lines
     * are reported and dropped, resuming from the last valid entry).
     */
    bool resume = false;

    /**
     * Fault to inject (tests / `--inject-fault`); when unset, the
     * MG_FAULTS environment variable is consulted.  See sim/fault.h.
     */
    std::optional<FaultSpec> fault{};
};

/** Outcome counts of one batch (see summarize()). */
struct BatchSummary
{
    size_t total = 0;
    size_t ok = 0;       ///< succeeded (including replays)
    size_t failed = 0;   ///< final state is a RunError
    size_t retried = 0;  ///< needed more than one attempt
    size_t timedOut = 0; ///< failed with ErrorClass::Timeout
    size_t replayed = 0; ///< served from the resume journal
};

/** Tally a batch's results. */
BatchSummary summarize(const std::vector<RunResult> &results);

class Runner
{
  public:
    using Options = RunnerOptions;

    explicit Runner(Options opts = {});
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** The pool size this runner resolved to. */
    unsigned jobs() const { return nThreads; }

    /**
     * Execute a batch.  Results arrive in submission order:
     * result[i] corresponds to batch[i].  A job that throws yields a
     * RunResult with ok = false and the exception message in `error`.
     *
     * @param phase  label for progress lines (one batch per figure)
     */
    std::vector<RunResult> run(const std::vector<RunRequest> &batch,
                               const std::string &phase = "");

    /**
     * The shared per-program context for a workload, created on first
     * use — the same context runner jobs use, so artefacts prepared
     * here (or by an earlier batch) are visible to later batches.
     */
    ProgramContext &context(const workloads::WorkloadSpec &spec,
                            bool alt_input = false);

    /** Resolve the default worker count (MG_JOBS or all cores). */
    static unsigned defaultJobs();

  private:
    struct BatchState
    {
        const std::vector<RunRequest> *reqs = nullptr;
        std::vector<RunResult> *results = nullptr;
        size_t next = 0;
        size_t done = 0;
        std::string phase;
    };

    /** A context plus its once-only construction latch. */
    struct ContextSlot
    {
        std::once_flag once;
        std::unique_ptr<ProgramContext> ctx;
    };

    void workerLoop();

    /**
     * One job end-to-end: journal replay, fault arming, isolation,
     * the retry/backoff loop, and journal append.  Never throws.
     */
    RunResult executeJob(const RunRequest &req);

    /** One attempt (isolated or in-process); never throws. */
    RunResult executeOnce(const RunRequest &req, const std::string &key,
                          unsigned attempt);

    /** In-process attempt body against the shared contexts. */
    RunResult execute(const RunRequest &req);

    Options opts;
    unsigned nThreads = 1;
    std::vector<std::thread> workers;

    std::mutex mu;                ///< guards cur + stopping
    std::condition_variable cvWork;
    std::condition_variable cvDone;
    BatchState *cur = nullptr;
    bool stopping = false;

    std::mutex ctxMu;             ///< guards the contexts map
    std::map<std::string, std::unique_ptr<ContextSlot>> contexts;

    /** Read-only after construction (workers may read concurrently). */
    std::optional<FaultSpec> fault;
    std::map<std::string, std::string> resumeEntries;

    journal::Writer journalWriter;
};

} // namespace mg::sim

#endif // MG_SIM_RUNNER_H
