/**
 * @file
 * Parallel experiment runner: executes a batch of RunRequest jobs on
 * a fixed-size thread pool and returns RunResults in deterministic
 * submission order, regardless of completion order.
 *
 * The runner owns one ProgramContext per (workload, input-set) pair,
 * so per-program artefacts — execution counts, slack profiles,
 * baseline runs, candidate pools — are computed once and shared by
 * every job on that program.  The contexts' lazy caches are
 * internally locked (see sim/experiment.h), so two concurrent jobs on
 * the same program are safe.
 *
 * Determinism: each job is a pure function of its request (the
 * simulator has no global state and the caches only memoize
 * deterministic computations), so an N-thread run produces
 * bit-identical results to a 1-thread run of the same batch.
 *
 * Worker count: Options::jobs if non-zero, else the MG_JOBS
 * environment variable, else std::thread::hardware_concurrency().
 */

#ifndef MG_SIM_RUNNER_H
#define MG_SIM_RUNNER_H

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.h"

namespace mg::sim
{

/**
 * Runner construction options (namespace-scope so it is complete
 * before the constructor's default argument needs it).
 */
struct RunnerOptions
{
    /** Worker threads; 0 = MG_JOBS env var, else all cores. */
    unsigned jobs = 0;

    /** Print "[phase] done/total" lines to stderr as jobs finish. */
    bool progress = false;
};

class Runner
{
  public:
    using Options = RunnerOptions;

    explicit Runner(Options opts = {});
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** The pool size this runner resolved to. */
    unsigned jobs() const { return nThreads; }

    /**
     * Execute a batch.  Results arrive in submission order:
     * result[i] corresponds to batch[i].  A job that throws yields a
     * RunResult with ok = false and the exception message in `error`.
     *
     * @param phase  label for progress lines (one batch per figure)
     */
    std::vector<RunResult> run(const std::vector<RunRequest> &batch,
                               const std::string &phase = "");

    /**
     * The shared per-program context for a workload, created on first
     * use — the same context runner jobs use, so artefacts prepared
     * here (or by an earlier batch) are visible to later batches.
     */
    ProgramContext &context(const workloads::WorkloadSpec &spec,
                            bool alt_input = false);

    /** Resolve the default worker count (MG_JOBS or all cores). */
    static unsigned defaultJobs();

  private:
    struct BatchState
    {
        const std::vector<RunRequest> *reqs = nullptr;
        std::vector<RunResult> *results = nullptr;
        size_t next = 0;
        size_t done = 0;
        std::string phase;
    };

    /** A context plus its once-only construction latch. */
    struct ContextSlot
    {
        std::once_flag once;
        std::unique_ptr<ProgramContext> ctx;
    };

    void workerLoop();
    RunResult execute(const RunRequest &req);

    Options opts;
    unsigned nThreads = 1;
    std::vector<std::thread> workers;

    std::mutex mu;                ///< guards cur + stopping
    std::condition_variable cvWork;
    std::condition_variable cvDone;
    BatchState *cur = nullptr;
    bool stopping = false;

    std::mutex ctxMu;             ///< guards the contexts map
    std::map<std::string, std::unique_ptr<ContextSlot>> contexts;
};

} // namespace mg::sim

#endif // MG_SIM_RUNNER_H
