#include "sim/perf_harness.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "minigraph/selectors.h"
#include "sim/runner.h"
#include "trace/stats_json.h"
#include "uarch/config.h"
#include "workloads/workload.h"

namespace mg::sim
{

namespace
{

/** The five paper policies, in fixed bench order. */
const char *const kPolicies[] = {
    "none", "struct-all", "struct-bounded", "slack-profile",
    "slack-dynamic",
};

constexpr const char *kBenchConfig = "reduced";

/** The golden-snapshot workloads (tests/trace/golden_stats_test.cc). */
const char *const kSmokeWorkloads[] = {
    "crc32.0", "bitcount.0", "adpcm_c.0",
};

double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

long
peakRssKb()
{
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss; // kilobytes on Linux
}

/** Cells for an explicit workload list x the five policies. */
std::vector<PerfCell>
crossWithPolicies(const std::vector<std::string> &names)
{
    std::vector<PerfCell> cells;
    cells.reserve(names.size() * std::size(kPolicies));
    for (const std::string &w : names)
        for (const char *sel : kPolicies)
            cells.push_back({w, kBenchConfig, sel});
    return cells;
}

RunRequest
requestFor(const PerfCell &cell, std::string &err)
{
    RunRequest req;
    auto spec = workloads::findWorkload(cell.workload);
    if (!spec) {
        err = "unknown workload '" + cell.workload + "'";
        return req;
    }
    req.workload = *spec;
    auto cfg = uarch::configFromName(cell.config);
    if (!cfg) {
        err = "unknown config '" + cell.config + "'";
        return req;
    }
    req.config = *cfg;
    if (cell.selector != "none") {
        auto kind = minigraph::selectorFromName(cell.selector);
        if (!kind) {
            err = "unknown selector '" + cell.selector + "'";
            return req;
        }
        req.selector = *kind;
    }
    return req;
}

PerfRun
runToPerf(const PerfCell &cell, const RunRequest &req,
          const RunResult &r)
{
    PerfRun out;
    out.cell = cell;
    out.ok = r.ok;
    if (!r.ok) {
        out.error = r.error;
        return out;
    }
    out.simCycles = r.sim.cycles;
    out.statsJsonLine =
        r.statsJsonLine.empty()
            ? trace::statsJson(metaForRun(req, r), r.sim)
            : r.statsJsonLine;
    out.statsHash = fnv1a64(out.statsJsonLine);
    return out;
}

} // namespace

uint64_t
fnv1a64(const std::string &text)
{
    return mg::fnv1a64(text);
}

double
PerfReport::speedup() const
{
    if (!baseline || batchWallSec <= 0 || baseline->batchWallSec <= 0)
        return 0.0;
    return baseline->batchWallSec / batchWallSec;
}

bool
PerfReport::allOk() const
{
    for (const PerfRun &r : runs)
        if (!r.ok)
            return false;
    return true;
}

std::vector<PerfCell>
perfPinnedCells()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::workloadList()) {
        std::string n = w.name();
        if (n.size() > 2 && n.compare(n.size() - 2, 2, ".0") == 0)
            names.push_back(n);
    }
    return crossWithPolicies(names);
}

std::vector<PerfCell>
perfSmokeCells()
{
    return crossWithPolicies(
        {std::begin(kSmokeWorkloads), std::end(kSmokeWorkloads)});
}

std::vector<PerfCell>
perfFullCells()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::workloadList())
        names.push_back(w.name());
    return crossWithPolicies(names);
}

std::vector<PerfCell>
perfCellsForSubset(const std::string &name, std::string &err)
{
    if (name == "pinned")
        return perfPinnedCells();
    if (name == "smoke")
        return perfSmokeCells();
    if (name == "full")
        return perfFullCells();
    err = "unknown subset '" + name + "' (want pinned, smoke or full)";
    return {};
}

PerfReport
runPerf(const std::vector<PerfCell> &cells, unsigned jobs, unsigned pr,
        const std::string &subset)
{
    PerfReport rep;
    rep.pr = pr;
    rep.subset = subset;
    rep.jobs = jobs ? jobs : 1;

    RunnerOptions opts;
    opts.jobs = rep.jobs;
    Runner runner(opts);

    std::vector<RunRequest> reqs;
    reqs.reserve(cells.size());
    std::vector<std::string> badCell(cells.size());
    for (size_t i = 0; i < cells.size(); ++i)
        reqs.push_back(requestFor(cells[i], badCell[i]));

    double t0 = nowSec();
    if (rep.jobs == 1) {
        // Pinned measurement mode: one cell at a time, so per-run
        // wall times are meaningful.
        for (size_t i = 0; i < cells.size(); ++i) {
            if (!badCell[i].empty()) {
                PerfRun bad;
                bad.cell = cells[i];
                bad.error = badCell[i];
                rep.runs.push_back(std::move(bad));
                continue;
            }
            double r0 = nowSec();
            auto results = runner.run({reqs[i]}, "perf");
            double r1 = nowSec();
            PerfRun run = runToPerf(cells[i], reqs[i], results[0]);
            run.wallSec = r1 - r0;
            rep.runs.push_back(std::move(run));
        }
    } else {
        auto results = runner.run(reqs, "perf");
        for (size_t i = 0; i < cells.size(); ++i) {
            if (!badCell[i].empty()) {
                PerfRun bad;
                bad.cell = cells[i];
                bad.error = badCell[i];
                rep.runs.push_back(std::move(bad));
                continue;
            }
            rep.runs.push_back(
                runToPerf(cells[i], reqs[i], results[i]));
        }
    }
    rep.batchWallSec = nowSec() - t0;

    for (const PerfRun &r : rep.runs)
        rep.totalSimCycles += r.simCycles;
    if (rep.batchWallSec > 0) {
        rep.simCyclesPerSec =
            static_cast<double>(rep.totalSimCycles) / rep.batchWallSec;
    }
    rep.peakRssKb = peakRssKb();
    return rep;
}

// ---------------------------------------------------------------------
// BENCH_<pr>.json serialization
// ---------------------------------------------------------------------

std::string
benchJson(const PerfReport &rep)
{
    std::string out = "{\n";
    out += "  \"schema\": \"mg-bench-v1\",\n";
    out += strprintf("  \"pr\": %u,\n", rep.pr);
    out += strprintf("  \"subset\": \"%s\",\n",
                     trace::jsonEscape(rep.subset).c_str());
    out += strprintf("  \"jobs\": %u,\n", rep.jobs);
    out += strprintf("  \"batchWallSec\": %.6f,\n", rep.batchWallSec);
    out += strprintf("  \"totalSimCycles\": %llu,\n",
                     static_cast<unsigned long long>(
                         rep.totalSimCycles));
    out += strprintf("  \"simCyclesPerSec\": %.1f,\n",
                     rep.simCyclesPerSec);
    out += strprintf("  \"peakRssKb\": %ld,\n", rep.peakRssKb);
    if (rep.baseline) {
        const PerfBaseline &b = *rep.baseline;
        out += strprintf(
            "  \"baseline\": {\"label\": \"%s\", \"batchWallSec\": "
            "%.6f, \"totalSimCycles\": %llu, \"simCyclesPerSec\": "
            "%.1f, \"peakRssKb\": %ld},\n",
            trace::jsonEscape(b.label).c_str(), b.batchWallSec,
            static_cast<unsigned long long>(b.totalSimCycles),
            b.simCyclesPerSec, b.peakRssKb);
        out += strprintf("  \"speedup\": %.3f,\n", rep.speedup());
    }
    out += "  \"runs\": [\n";
    for (size_t i = 0; i < rep.runs.size(); ++i) {
        const PerfRun &r = rep.runs[i];
        out += strprintf(
            "    {\"workload\": \"%s\", \"config\": \"%s\", "
            "\"selector\": \"%s\", \"ok\": %s, \"simCycles\": %llu, "
            "\"statsHash\": \"%016llx\", \"wallSec\": %.6f%s}%s\n",
            trace::jsonEscape(r.cell.workload).c_str(),
            trace::jsonEscape(r.cell.config).c_str(),
            trace::jsonEscape(r.cell.selector).c_str(),
            r.ok ? "true" : "false",
            static_cast<unsigned long long>(r.simCycles),
            static_cast<unsigned long long>(r.statsHash), r.wallSec,
            r.ok ? ""
                 : strprintf(", \"error\": \"%s\"",
                             trace::jsonEscape(r.error).c_str())
                       .c_str(),
            i + 1 < rep.runs.size() ? "," : "");
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

// ---------------------------------------------------------------------
// BENCH_<pr>.json parsing (schema mg-bench-v1)
// ---------------------------------------------------------------------

namespace
{

/** Minimal cursor over a JSON document with our fixed shape. */
struct JsonCursor
{
    const char *p;
    const char *end;
    std::string err;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (p >= end || *p != c)
            return fail(std::string("expected '") + c + "'");
        ++p;
        return true;
    }

    /** Peek (after whitespace) without consuming. */
    char
    peek()
    {
        skipWs();
        return p < end ? *p : '\0';
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("dangling escape");
                switch (*p) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  default: out += *p; break;
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseDouble(double &out)
    {
        skipWs();
        char *after = nullptr;
        out = std::strtod(p, &after);
        if (after == p)
            return fail("expected a number");
        p = after;
        return true;
    }

    bool
    parseU64(uint64_t &out)
    {
        skipWs();
        char *after = nullptr;
        out = std::strtoull(p, &after, 10);
        if (after == p)
            return fail("expected an integer");
        p = after;
        return true;
    }

    bool
    parseBool(bool &out)
    {
        skipWs();
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
            out = true;
            p += 4;
            return true;
        }
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
            out = false;
            p += 5;
            return true;
        }
        return fail("expected true/false");
    }

    /**
     * Iterate "key": value pairs of an object, invoking fn(key); fn
     * parses the value and returns false on error.
     */
    template <typename Fn>
    bool
    parseObject(Fn fn)
    {
        if (!expect('{'))
            return false;
        if (peek() == '}') {
            ++p;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(key) || !expect(':'))
                return false;
            if (!fn(key))
                return false;
            char c = peek();
            if (c == ',') {
                ++p;
                continue;
            }
            if (c == '}') {
                ++p;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }
};

} // namespace

std::string
parseBenchJson(const std::string &text, PerfReport &out)
{
    out = PerfReport{};
    JsonCursor cur{text.data(), text.data() + text.size(), ""};
    std::string schema;
    double speedup_ignored = 0.0;

    bool ok = cur.parseObject([&](const std::string &key) -> bool {
        if (key == "schema")
            return cur.parseString(schema);
        if (key == "pr") {
            uint64_t v;
            if (!cur.parseU64(v))
                return false;
            out.pr = static_cast<unsigned>(v);
            return true;
        }
        if (key == "subset")
            return cur.parseString(out.subset);
        if (key == "jobs") {
            uint64_t v;
            if (!cur.parseU64(v))
                return false;
            out.jobs = static_cast<unsigned>(v);
            return true;
        }
        if (key == "batchWallSec")
            return cur.parseDouble(out.batchWallSec);
        if (key == "totalSimCycles")
            return cur.parseU64(out.totalSimCycles);
        if (key == "simCyclesPerSec")
            return cur.parseDouble(out.simCyclesPerSec);
        if (key == "peakRssKb") {
            double v;
            if (!cur.parseDouble(v))
                return false;
            out.peakRssKb = static_cast<long>(v);
            return true;
        }
        if (key == "speedup")
            return cur.parseDouble(speedup_ignored);
        if (key == "baseline") {
            PerfBaseline b;
            bool bok = cur.parseObject([&](const std::string &k) {
                if (k == "label")
                    return cur.parseString(b.label);
                if (k == "batchWallSec")
                    return cur.parseDouble(b.batchWallSec);
                if (k == "totalSimCycles")
                    return cur.parseU64(b.totalSimCycles);
                if (k == "simCyclesPerSec")
                    return cur.parseDouble(b.simCyclesPerSec);
                if (k == "peakRssKb") {
                    double v;
                    if (!cur.parseDouble(v))
                        return false;
                    b.peakRssKb = static_cast<long>(v);
                    return true;
                }
                return cur.fail("unknown baseline key '" + k + "'");
            });
            if (!bok)
                return false;
            out.baseline = b;
            return true;
        }
        if (key == "runs") {
            if (!cur.expect('['))
                return false;
            if (cur.peek() == ']') {
                ++cur.p;
                return true;
            }
            for (;;) {
                PerfRun r;
                bool rok = cur.parseObject([&](const std::string &k) {
                    if (k == "workload")
                        return cur.parseString(r.cell.workload);
                    if (k == "config")
                        return cur.parseString(r.cell.config);
                    if (k == "selector")
                        return cur.parseString(r.cell.selector);
                    if (k == "ok")
                        return cur.parseBool(r.ok);
                    if (k == "simCycles")
                        return cur.parseU64(r.simCycles);
                    if (k == "statsHash") {
                        std::string hex;
                        if (!cur.parseString(hex))
                            return false;
                        r.statsHash =
                            std::strtoull(hex.c_str(), nullptr, 16);
                        return true;
                    }
                    if (k == "wallSec")
                        return cur.parseDouble(r.wallSec);
                    if (k == "error")
                        return cur.parseString(r.error);
                    return cur.fail("unknown run key '" + k + "'");
                });
                if (!rok)
                    return false;
                out.runs.push_back(std::move(r));
                char c = cur.peek();
                if (c == ',') {
                    ++cur.p;
                    continue;
                }
                if (c == ']') {
                    ++cur.p;
                    return true;
                }
                return cur.fail("expected ',' or ']' in runs");
            }
        }
        return cur.fail("unknown key '" + key + "'");
    });

    if (!ok)
        return cur.err.empty() ? "malformed bench JSON" : cur.err;
    if (schema != "mg-bench-v1")
        return "unsupported schema '" + schema + "'";
    return "";
}

} // namespace mg::sim
