/**
 * @file
 * Batch journal: an append-only record of completed runs that lets
 * `mgsim batch --resume` skip work a crashed or killed batch already
 * finished.
 *
 * Format: one completed run per line,
 *
 *     <run key> '\t' <stats JSON> '\n'
 *
 * where the key is journal::runKey(request) and the JSON is the
 * deterministic trace::statsJson line of the result.  Only successful
 * runs are journalled — failed runs re-execute on resume.  The loader
 * is corruption-tolerant: a truncated last line (host died mid-write)
 * or garbage bytes are reported and dropped, resuming from the last
 * valid entry — never treated as silent success.
 */

#ifndef MG_SIM_JOURNAL_H
#define MG_SIM_JOURNAL_H

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "common/version.h"
#include "sim/experiment.h"

namespace mg::sim::journal
{

/**
 * Deterministic identity of a run: every request field that changes
 * the result is folded into the key — including the simulator
 * version, so a journal written by an older timing model can never
 * be replayed as current results (the same rule the DSE result store
 * applies to its content addresses).  E.g.
 *
 *     "crc32.0#alt|reduced|slack-profile|budget=512|cross-input|sim=mg-sim-8"
 *
 * Keys contain no tabs or newlines (journal framing) and no ':'
 * (fault-spec match separator).  Configs must be named (registry
 * configs always are); an unnamed config yields an "?" component.
 *
 * @param sim_version  defaults to the compiled-in kSimVersion;
 *                     overridable so tests can fabricate stale keys
 */
std::string runKey(const RunRequest &req,
                   const std::string &sim_version = kSimVersion);

/** Result of loading a journal file. */
struct LoadResult
{
    /** key -> stats JSON line, last entry winning. */
    std::map<std::string, std::string> entries;

    /** Corrupt lines dropped (truncated tail, garbage, bad JSON). */
    size_t dropped = 0;

    /** Human-readable description of dropped lines ("" = clean). */
    std::string warning;

    /** True if the file existed (a missing file loads empty/clean). */
    bool existed = false;
};

/**
 * Load a journal, dropping corrupt lines (see LoadResult::dropped).
 * Every surviving entry parsed as valid stats JSON for its key.
 */
LoadResult load(const std::string &path);

/** Append-only journal writer shared by the runner's workers. */
class Writer
{
  public:
    Writer() = default;
    ~Writer();

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    /**
     * Open for appending (creating if missing).
     *
     * @return "" on success, else the error
     */
    std::string open(const std::string &path);

    bool isOpen() const { return file != nullptr; }

    /**
     * Append one completed run, flush, and fsync, so entries survive
     * both a SIGKILL of this process and a host power loss — and so a
     * torn entry can only ever be the journal's final line (the
     * loader's truncated-tail recovery depends on that ordering).
     * Thread-safe.
     */
    void append(const std::string &key, const std::string &stats_json);

  private:
    std::mutex mu;
    std::FILE *file = nullptr;
};

} // namespace mg::sim::journal

#endif // MG_SIM_JOURNAL_H
