#include "sim/batch_options.h"

#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "sim/runner.h"
#include "trace/stats_json.h"

namespace mg::sim
{

namespace
{

/** True if the environment variable is set to "1". */
bool
envBool(const char *name, bool &present)
{
    const char *p = std::getenv(name);
    present = p != nullptr;
    return p && p[0] == '1';
}

/** Parse an unsigned integer in [lo, hi]; "" on success. */
std::string
parseUnsignedIn(const std::string &text, long lo, long hi,
                const char *what, unsigned &out)
{
    char *end = nullptr;
    long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v < lo || v > hi) {
        return strprintf("%s '%s': want an integer in %ld..%ld", what,
                         text.c_str(), lo, hi);
    }
    out = static_cast<unsigned>(v);
    return "";
}

/** Parse a double; "" on success. */
std::string
parseDoubleMin(const std::string &text, double min, const char *what,
               double &out)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < min) {
        return strprintf("%s '%s': want a number >= %g", what,
                         text.c_str(), min);
    }
    out = v;
    return "";
}

} // namespace

const char *
optionSourceName(OptionSource src)
{
    switch (src) {
      case OptionSource::Default: return "default";
      case OptionSource::Env: return "env";
      case OptionSource::Flag: return "flag";
    }
    return "?";
}

unsigned
envJobs()
{
    if (const char *env = std::getenv("MG_JOBS")) {
        long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
        mg_warn("ignoring invalid MG_JOBS='%s' (want a positive "
                "integer)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

BatchOptions
BatchOptions::fromEnv()
{
    BatchOptions o;

    o.jobs = envJobs();
    if (std::getenv("MG_JOBS"))
        o.src.jobs = OptionSource::Env;

    bool present = false;
    o.json = envBool("MG_JSON", present);
    if (present)
        o.src.json = OptionSource::Env;
    o.progress = envBool("MG_PROGRESS", present);
    if (present)
        o.src.progress = OptionSource::Env;
    o.isolate = envBool("MG_ISOLATE", present);
    if (present)
        o.src.isolate = OptionSource::Env;
    o.resume = envBool("MG_RESUME", present);
    if (present)
        o.src.resume = OptionSource::Env;

    if (const char *p = std::getenv("MG_TIMEOUT")) {
        double v = std::atof(p);
        if (v > 0) {
            o.timeoutSec = v;
            o.src.timeout = OptionSource::Env;
        } else {
            mg_warn("ignoring invalid MG_TIMEOUT='%s' (want a positive "
                    "number of seconds)", p);
        }
    }
    if (const char *p = std::getenv("MG_RETRIES")) {
        long v = std::atol(p);
        if (v > 0) {
            o.retries = static_cast<unsigned>(v);
            o.src.retries = OptionSource::Env;
        }
    }
    if (const char *p = std::getenv("MG_BACKOFF")) {
        double v = std::atof(p);
        if (v >= 0) {
            o.backoffSec = v;
            o.src.backoff = OptionSource::Env;
        } else {
            mg_warn("ignoring invalid MG_BACKOFF='%s' (want a "
                    "non-negative number of seconds)", p);
        }
    }
    if (const char *p = std::getenv("MG_JOURNAL"); p && p[0] != '\0') {
        o.journal = p;
        o.src.journal = OptionSource::Env;
    }
    if (const char *p = std::getenv("MG_FAULTS"); p && p[0] != '\0') {
        std::string err;
        o.fault = parseFaultSpec(p, err);
        if (o.fault) {
            o.faultSpec = p;
            o.src.fault = OptionSource::Env;
        } else {
            mg_warn("ignoring MG_FAULTS: %s", err.c_str());
        }
    }

    o.checkLevel = uarch::defaultCheckLevel();
    if (std::getenv("MG_CHECKLEVEL"))
        o.src.checkLevel = OptionSource::Env;

    return o;
}

bool
BatchOptions::ownsFlag(const std::string &flag)
{
    return flag == "--jobs" || flag == "--json" ||
           flag == "--progress" || flag == "--isolate" ||
           flag == "--timeout" || flag == "--retries" ||
           flag == "--backoff" || flag == "--journal" ||
           flag == "--resume" || flag == "--inject-fault" ||
           flag == "--check-level";
}

bool
BatchOptions::applyFlag(const std::string &flag,
                        const std::string &value, std::string &err)
{
    if (flag == "--jobs") {
        // Distinct complaint: --jobs has a documented sizing rule.
        char *end = nullptr;
        long v = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || v <= 0 ||
            v > 1024) {
            err = strprintf(
                "--jobs %s: worker count must be a positive integer "
                "in 1..1024 (omit the flag for the default: MG_JOBS, "
                "else all cores)",
                value.c_str());
            return true;
        }
        jobs = static_cast<unsigned>(v);
        src.jobs = OptionSource::Flag;
        return true;
    }
    if (flag == "--json") {
        json = true;
        src.json = OptionSource::Flag;
        return true;
    }
    if (flag == "--progress") {
        progress = true;
        src.progress = OptionSource::Flag;
        return true;
    }
    if (flag == "--isolate") {
        isolate = true;
        src.isolate = OptionSource::Flag;
        return true;
    }
    if (flag == "--timeout") {
        double v = 0.0;
        char *end = nullptr;
        v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || v <= 0) {
            err = strprintf("--timeout %s: want a positive number of "
                            "seconds", value.c_str());
            return true;
        }
        timeoutSec = v;
        src.timeout = OptionSource::Flag;
        return true;
    }
    if (flag == "--retries") {
        err = parseUnsignedIn(value, 0, 100, "--retries", retries);
        if (err.empty())
            src.retries = OptionSource::Flag;
        return true;
    }
    if (flag == "--backoff") {
        err = parseDoubleMin(value, 0.0, "--backoff", backoffSec);
        if (err.empty())
            src.backoff = OptionSource::Flag;
        return true;
    }
    if (flag == "--journal") {
        journal = value;
        src.journal = OptionSource::Flag;
        return true;
    }
    if (flag == "--resume") {
        resume = true;
        src.resume = OptionSource::Flag;
        return true;
    }
    if (flag == "--inject-fault") {
        std::string ferr;
        fault = parseFaultSpec(value, ferr);
        if (!fault) {
            err = strprintf("--inject-fault: %s", ferr.c_str());
            return true;
        }
        faultSpec = value;
        src.fault = OptionSource::Flag;
        return true;
    }
    if (flag == "--check-level") {
        auto lvl = uarch::checkLevelFromName(value);
        if (!lvl) {
            err = strprintf("--check-level %s: want off, cheap or "
                            "full", value.c_str());
            return true;
        }
        checkLevel = *lvl;
        src.checkLevel = OptionSource::Flag;
        return true;
    }
    return false;
}

std::string
BatchOptions::validate() const
{
    if (timeoutSec > 0 && !isolate) {
        return "--timeout requires --isolate (an in-process run "
               "cannot be killed safely)";
    }
    if (resume && journal.empty())
        return "--resume requires --journal";
    return "";
}

std::string
BatchOptions::describe() const
{
    auto uintField = [](const char *name, uint64_t v, OptionSource s) {
        return strprintf("\"%s\":{\"value\":%llu,\"source\":\"%s\"}",
                         name, static_cast<unsigned long long>(v),
                         optionSourceName(s));
    };
    auto boolField = [](const char *name, bool v, OptionSource s) {
        return strprintf("\"%s\":{\"value\":%s,\"source\":\"%s\"}",
                         name, v ? "true" : "false",
                         optionSourceName(s));
    };
    auto numField = [](const char *name, double v, OptionSource s) {
        return strprintf("\"%s\":{\"value\":%.6f,\"source\":\"%s\"}",
                         name, v, optionSourceName(s));
    };
    auto strField = [](const char *name, const std::string &v,
                       OptionSource s) {
        return strprintf("\"%s\":{\"value\":\"%s\",\"source\":\"%s\"}",
                         name, trace::jsonEscape(v).c_str(),
                         optionSourceName(s));
    };

    std::string out = "{";
    out += uintField("jobs", jobs, src.jobs) + ",";
    out += boolField("json", json, src.json) + ",";
    out += boolField("progress", progress, src.progress) + ",";
    out += boolField("isolate", isolate, src.isolate) + ",";
    out += numField("timeoutSec", timeoutSec, src.timeout) + ",";
    out += uintField("retries", retries, src.retries) + ",";
    out += numField("backoffSec", backoffSec, src.backoff) + ",";
    out += strField("journal", journal, src.journal) + ",";
    out += boolField("resume", resume, src.resume) + ",";
    out += strField("injectFault", faultSpec, src.fault) + ",";
    out += strField("checkLevel", uarch::nameOf(checkLevel),
                    src.checkLevel);
    out += "}";
    return out;
}

RunnerOptions
BatchOptions::runnerOptions() const
{
    RunnerOptions o;
    o.jobs = jobs;
    o.progress = progress;
    o.isolate = isolate;
    o.timeoutSec = timeoutSec;
    o.retries = retries;
    o.backoffSec = backoffSec;
    o.journalPath = journal;
    o.resume = resume;
    o.fault = fault;
    return o;
}

RunnerOptions
resolveRunnerOptions(const RunnerOptions &opts)
{
    RunnerOptions out = opts;
    if (out.jobs == 0)
        out.jobs = envJobs();
    if (!out.fault) {
        if (const char *env = std::getenv("MG_FAULTS");
            env && env[0] != '\0') {
            std::string err;
            out.fault = parseFaultSpec(env, err);
            if (!out.fault)
                mg_warn("ignoring MG_FAULTS: %s", err.c_str());
        }
    }
    return out;
}

} // namespace mg::sim
