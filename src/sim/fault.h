/**
 * @file
 * MG_FAULTS: deterministic fault injection for the batch layer.
 *
 * A fault spec names a failure kind and where it fires:
 *
 *     <kind>[@<cycle>][:<match>][!<attempts>]
 *
 *     kind      crash | hang | oom | corrupt
 *     cycle     simulated cycle of the final timing run at which the
 *               fault triggers (default 1)
 *     match     substring of the run key (journal::runKey); the fault
 *               only arms for matching runs (default: every run)
 *     attempts  only fire on the first N attempts of a run, so a
 *               retried run recovers (default: every attempt)
 *
 * Examples: "crash@100", "corrupt@5000:crc32", "oom@10:adpcm!2".
 *
 * Kinds:
 *   crash    std::abort() — the sandbox child dies on SIGABRT, as a
 *            real heap corruption or sanitizer abort would
 *   hang     spin forever — only the watchdog timeout can recover
 *   oom      throw std::bad_alloc, as a failed allocation would
 *   corrupt  drive the Core audit test hook (Core::setAuditTestHook)
 *            to raise a CheckError, as the invariant auditor does
 *            when it catches the pipeline in an illegal state
 *
 * The runner arms a fault from RunnerOptions::fault or the MG_FAULTS
 * environment variable (`mgsim batch --inject-fault` sets the
 * former).  Every recovery path in docs/ROBUSTNESS.md is exercised
 * through this harness by the ctest label `robust`.
 */

#ifndef MG_SIM_FAULT_H
#define MG_SIM_FAULT_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace mg::uarch
{
class Core;
}

namespace mg::sim
{

enum class FaultKind : uint8_t { Crash, Hang, Oom, Corrupt };

/** Registry name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** One parsed fault directive. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Crash;

    /** Fire at the end of this simulated cycle (1-based). */
    uint64_t cycle = 1;

    /** Run-key substring the fault applies to ("" = every run). */
    std::string match;

    /** Fire only on attempt indices < this (retries then succeed). */
    unsigned firstAttempts = ~0u;

    /** True if this spec arms for the given run key and attempt. */
    bool appliesTo(const std::string &run_key, unsigned attempt) const;
};

/**
 * Parse a fault spec.
 *
 * @return nullopt and set `err` on a malformed spec.
 */
std::optional<FaultSpec> parseFaultSpec(const std::string &text,
                                        std::string &err);

/**
 * The audit hook implementing a fault: counts cycles and triggers the
 * configured failure at the configured cycle.  Install with
 * RunRequest::auditHook.  The hook also keeps lastObservedCycle()
 * current so a crashing child can report how far it got.
 */
std::function<void(uarch::Core &)> makeFaultHook(const FaultSpec &spec);

/**
 * Wrap a hook (or nothing) so every end-of-cycle updates
 * lastObservedCycle(); the isolated child installs this on all runs.
 */
std::function<void(uarch::Core &)>
makeCycleWatchHook(std::function<void(uarch::Core &)> inner);

/**
 * Last end-of-cycle count observed by a fault/watch hook in this
 * process (async-signal-safe to read; see supervisor.cc's fatal
 * signal handler).  0 until a hooked run starts.
 */
uint64_t lastObservedCycle();

/** Reset lastObservedCycle() (the child does this before its run). */
void resetObservedCycle();

} // namespace mg::sim

#endif // MG_SIM_FAULT_H
