/**
 * @file
 * Experiment driver: the profile -> select -> rewrite -> simulate
 * pipeline used by every evaluation in the paper, with in-process
 * caching of per-program artefacts (execution counts, slack profiles,
 * baseline runs).
 */

#ifndef MG_SIM_EXPERIMENT_H
#define MG_SIM_EXPERIMENT_H

#include <map>
#include <memory>
#include <string>

#include "minigraph/rewriter.h"
#include "minigraph/selectors.h"
#include "profile/slack_profile.h"
#include "uarch/core.h"
#include "workloads/workload.h"

namespace mg::sim
{

/** Result of one selector-enabled simulation. */
struct SelectorRun
{
    uarch::SimResult sim;
    uint32_t templatesUsed = 0;
    size_t instances = 0;

    /** Dynamic coverage measured at commit. */
    double coverage() const { return sim.coverage(); }
};

/**
 * Per-program experiment context: owns the program, its execution
 * counts, and lazily computed slack profiles and baseline runs.
 */
class ProgramContext
{
  public:
    /**
     * @param spec       which benchmark
     * @param alt_input  build with the alternate input set (Fig. 9)
     */
    explicit ProgramContext(const workloads::WorkloadSpec &spec,
                            bool alt_input = false);

    /** Wrap an already-built program (used by tests/examples). */
    explicit ProgramContext(assembler::Program prog);

    const assembler::Program &program() const { return prog; }

    /** Per-PC dynamic execution counts (computed once). */
    const minigraph::ExecCounts &counts();

    /**
     * Slack profile collected on the given configuration (cached by
     * configuration name).
     */
    const profile::SlackProfileData &profileOn(
        const uarch::CoreConfig &config);

    /** Simulate the original program (no mini-graphs); cached. */
    const uarch::SimResult &baseline(const uarch::CoreConfig &config);

    /**
     * Full pipeline: filter + select with `kind`, rewrite, simulate on
     * `sim_config`.  For Slack-Profile selectors the profile is taken
     * from `profile_config` (defaults to sim_config — "self-trained").
     */
    SelectorRun runSelector(minigraph::SelectorKind kind,
                            const uarch::CoreConfig &sim_config,
                            const uarch::CoreConfig *profile_config =
                                nullptr,
                            uint32_t template_budget = 512);

    /**
     * Like runSelector, but with an externally supplied slack profile
     * (the Figure-9 cross-input study trains on a *different* input
     * set's profile).
     */
    SelectorRun runSelectorWithProfile(
        minigraph::SelectorKind kind, const uarch::CoreConfig &sim_config,
        const profile::SlackProfileData &prof,
        uint32_t template_budget = 512);

    /**
     * Simulate an explicit set of chosen candidates (the Figure-8
     * exhaustive study drives this directly).
     */
    SelectorRun runChosen(const std::vector<minigraph::Candidate> &chosen,
                          const uarch::CoreConfig &sim_config,
                          minigraph::SelectorKind kind =
                              minigraph::SelectorKind::StructAll);

    /** The full enumerated candidate pool (cached). */
    const std::vector<minigraph::Candidate> &candidatePool();

  private:
    assembler::Program prog;
    std::unique_ptr<minigraph::ExecCounts> execCounts;
    std::map<std::string, profile::SlackProfileData> profiles;
    std::map<std::string, uarch::SimResult> baselines;
    std::unique_ptr<std::vector<minigraph::Candidate>> pool;
};

/** Configure the Slack-Dynamic hardware flags for a selector. */
uarch::CoreConfig configForSelector(const uarch::CoreConfig &base,
                                    minigraph::SelectorKind kind);

} // namespace mg::sim

#endif // MG_SIM_EXPERIMENT_H
