/**
 * @file
 * Experiment driver: the profile -> select -> rewrite -> simulate
 * pipeline used by every evaluation in the paper, with in-process
 * caching of per-program artefacts (execution counts, slack profiles,
 * baseline runs).
 *
 * The single entry point is ProgramContext::run(RunRequest): every
 * evaluation — baseline, selector-driven, cross-trained or an
 * explicit chosen set — is one RunRequest, so the serial path here
 * and the parallel path in sim/runner.h share one code path.  The
 * lazy per-program caches are mutex-guarded, so one context may be
 * shared by concurrent runner jobs.
 */

#ifndef MG_SIM_EXPERIMENT_H
#define MG_SIM_EXPERIMENT_H

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include <functional>

#include "minigraph/rewriter.h"
#include "minigraph/selectors.h"
#include "profile/slack_profile.h"
#include "trace/pipeline_tracer.h"
#include "trace/stats_json.h"
#include "uarch/core.h"
#include "workloads/workload.h"

namespace mg::sim
{

/**
 * How a run failed.  The class drives the retry policy: *transient*
 * classes (infrastructure-flavoured failures that a re-run can
 * plausibly clear: a crashed or OOM-killed sandbox, a watchdog
 * timeout, a marshalling I/O error) are retried with exponential
 * backoff; *permanent* classes (deterministic diagnoses: a C++
 * exception from the pipeline, an invariant-audit CheckError) are
 * reported immediately.
 */
enum class ErrorClass : uint8_t
{
    None,      ///< the run succeeded
    Exception, ///< C++ exception escaped the job (permanent)
    Check,     ///< invariant audit failed: CheckError (permanent)
    Oom,       ///< allocation failure: std::bad_alloc (transient)
    Crash,     ///< isolated child died on a signal (transient)
    Timeout,   ///< watchdog expired; child SIGKILLed (transient)
    Io,        ///< result marshalling / journal I/O failed (transient)
    Unknown,   ///< unrecognised failure (permanent: retry won't help)
};

/** Registry name of an error class (stable: used in the JSON dump). */
const char *errorClassName(ErrorClass cls);

/** Inverse of errorClassName (nullopt for unknown names). */
std::optional<ErrorClass> errorClassFromName(const std::string &name);

/** True if the retry policy should re-run a failure of this class. */
bool errorClassTransient(ErrorClass cls);

/**
 * Structured description of a failed run: everything the batch layer
 * captured about the failure, so one bad run is a report instead of a
 * dead sweep.
 */
struct RunError
{
    ErrorClass cls = ErrorClass::None;

    /** Human-readable failure description. */
    std::string message;

    /** Death signal of the isolated child (0 = none). */
    int signal = 0;

    /** Child exit status (-1 = did not exit normally / unknown). */
    int exitStatus = -1;

    /** Last simulated cycle observed before the failure (0 = unknown). */
    uint64_t lastCycle = 0;

    /** Tail of the failed child's captured stderr ("" = none). */
    std::string stderrTail;

    /** Execution attempts made, including retries. */
    unsigned attempts = 1;

    /** Total deterministic backoff slept between attempts. */
    double backoffSec = 0.0;
};

/**
 * One experiment job: which program, which machine, which selection
 * policy.  Default-constructed fields mean "baseline on the default
 * machine".
 *
 * The `workload` / `altInput` / `profileFromAltInput` fields identify
 * the program to a Runner (which owns the ProgramContexts);
 * ProgramContext::run ignores them because the context *is* the
 * program.
 */
struct RunRequest
{
    /** Which benchmark (Runner-level; ignored by ProgramContext). */
    workloads::WorkloadSpec workload{};

    /** Build with the alternate input set (Fig. 9, Runner-level). */
    bool altInput = false;

    /** The simulated machine. */
    uarch::CoreConfig config{};

    /** Selection policy; nullopt = baseline (no mini-graphs). */
    std::optional<minigraph::SelectorKind> selector{};

    /**
     * Machine the slack profile is collected on (cross-training);
     * defaults to `config` ("self-trained").
     */
    std::optional<uarch::CoreConfig> profileConfig{};

    /**
     * Train the slack profile on the *other* input set's build of the
     * same workload (the Figure-9 cross-input study; Runner-level).
     */
    bool profileFromAltInput = false;

    /** Externally supplied slack profile (overrides profileConfig). */
    const profile::SlackProfileData *profile = nullptr;

    /**
     * Simulate an explicit chosen candidate set instead of running a
     * selector (the Figure-8 exhaustive study); `selector` then only
     * configures the Slack-Dynamic hardware (default Struct-All).
     */
    std::optional<std::vector<minigraph::Candidate>> chosen{};

    /** MGT capacity for selection. */
    uint32_t templateBudget = 512;

    /**
     * Collect a pipeline trace of the final timing run and write the
     * configured Konata / Chrome files (see docs/TRACING.md).  Forces
     * a fresh simulation (bypasses the baseline cache).
     */
    std::optional<trace::TraceConfig> trace{};

    /**
     * Per-run watchdog timeout in seconds (0 = the runner's default,
     * which itself defaults to off).  Only enforceable in the
     * process-isolated mode, where expiry SIGKILLs the sandbox child
     * and records a Timeout RunError; see docs/ROBUSTNESS.md.
     */
    double timeoutSec = 0.0;

    /**
     * Hook installed on the final timing core via
     * Core::setAuditTestHook (runs at the end of every cycle).  Used
     * by the MG_FAULTS injection harness and tests; forces a fresh
     * simulation (bypasses the baseline cache) so the hook always
     * observes a live core.
     */
    std::function<void(uarch::Core &)> auditHook{};
};

/** Result of one experiment job. */
struct RunResult
{
    uarch::SimResult sim;
    uint32_t templatesUsed = 0;
    size_t instances = 0;

    /** Labels aligned with sim.mgTemplates (trace::templateLabel). */
    std::vector<std::string> templateNames;

    /**
     * The selected templates themselves, aligned with sim.mgTemplates
     * (the rewritten binary's MgBinaryInfo::templates order).  Only
     * populated for in-process runs; isolated runs and journal replays
     * marshal through stats JSON, which carries names only.  The
     * static-vs-dynamic consistency tests read these.
     */
    std::vector<isa::MgTemplate> templates;

    /** False if the job failed; `error` holds the message. */
    bool ok = true;
    std::string error;

    /** Structured failure details (cls == None iff ok). */
    RunError err;

    /** True if this result was replayed from a batch journal. */
    bool fromJournal = false;

    /**
     * Raw stats-JSON line this result was unmarshalled from (isolated
     * runs and journal replays; "" when the run executed in-process).
     * Kept so journals and `--json` output re-emit the exact bytes.
     */
    std::string statsJsonLine;

    /** Dynamic coverage measured at commit. */
    double coverage() const { return sim.coverage(); }

    /** IPC over original-program instructions. */
    double ipc() const { return sim.ipc(); }

    /** Mark this result failed with the given class and message. */
    void
    setError(ErrorClass cls, const std::string &message)
    {
        ok = false;
        error = message;
        err.cls = cls;
        err.message = message;
    }
};

/**
 * StatsMeta identifying one request/result pair, as used by the
 * stats-JSON wire format, the batch journal, and `mgsim --json`.
 *
 * @param workload_name  overrides the workload label ("" = derive it
 *                       from the request: spec name plus "#alt")
 */
trace::StatsMeta metaForRun(const RunRequest &req, const RunResult &r,
                            const std::string &workload_name = "");

/** Convert a RunError into the trace-layer ErrorDetail fields. */
trace::ErrorDetail errorDetailOf(const RunError &err);

/**
 * Per-program experiment context: owns the program, its execution
 * counts, and lazily computed slack profiles and baseline runs.  The
 * caches are guarded by an internal mutex; a context may be shared by
 * concurrent jobs (see sim/runner.h).
 */
class ProgramContext
{
  public:
    /**
     * @param spec       which benchmark
     * @param alt_input  build with the alternate input set (Fig. 9)
     */
    explicit ProgramContext(const workloads::WorkloadSpec &spec,
                            bool alt_input = false);

    /** Wrap an already-built program (used by tests/examples). */
    explicit ProgramContext(assembler::Program prog);

    const assembler::Program &program() const { return prog; }

    /** Per-PC dynamic execution counts (computed once). */
    const minigraph::ExecCounts &counts();

    /**
     * Slack profile collected on the given configuration (cached by
     * configuration name).
     */
    const profile::SlackProfileData &profileOn(
        const uarch::CoreConfig &config);

    /** Simulate the original program (no mini-graphs); cached. */
    const uarch::SimResult &baseline(const uarch::CoreConfig &config);

    /**
     * Execute one job on this program: baseline, selector pipeline
     * (filter + select + rewrite + simulate) or explicit chosen set,
     * per the request fields.  Runner-level fields (`workload`,
     * `altInput`, `profileFromAltInput`) are ignored.
     */
    RunResult run(const RunRequest &req);

    /** The full enumerated candidate pool (cached). */
    const std::vector<minigraph::Candidate> &candidatePool();

  private:
    RunResult simulateChosen(
        const std::vector<minigraph::Candidate> &chosen,
        const uarch::CoreConfig &sim_config, minigraph::SelectorKind kind,
        const trace::TraceConfig *trc = nullptr,
        const std::function<void(uarch::Core &)> &hook = nullptr);

    assembler::Program prog;

    /** Guards the lazy caches below (not `prog`, which is const after
     *  construction). */
    std::mutex cacheMu;
    std::unique_ptr<minigraph::ExecCounts> execCounts;
    std::map<std::string, profile::SlackProfileData> profiles;
    std::map<std::string, uarch::SimResult> baselines;
    std::unique_ptr<std::vector<minigraph::Candidate>> pool;
};

/** Configure the Slack-Dynamic hardware flags for a selector. */
uarch::CoreConfig configForSelector(const uarch::CoreConfig &base,
                                    minigraph::SelectorKind kind);

} // namespace mg::sim

#endif // MG_SIM_EXPERIMENT_H
