/**
 * @file
 * Experiment driver: the profile -> select -> rewrite -> simulate
 * pipeline used by every evaluation in the paper, with in-process
 * caching of per-program artefacts (execution counts, slack profiles,
 * baseline runs).
 *
 * The single entry point is ProgramContext::run(RunRequest): every
 * evaluation — baseline, selector-driven, cross-trained or an
 * explicit chosen set — is one RunRequest, so the serial path here
 * and the parallel path in sim/runner.h share one code path.  The
 * lazy per-program caches are mutex-guarded, so one context may be
 * shared by concurrent runner jobs.
 */

#ifndef MG_SIM_EXPERIMENT_H
#define MG_SIM_EXPERIMENT_H

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "minigraph/rewriter.h"
#include "minigraph/selectors.h"
#include "profile/slack_profile.h"
#include "trace/pipeline_tracer.h"
#include "uarch/core.h"
#include "workloads/workload.h"

namespace mg::sim
{

/**
 * One experiment job: which program, which machine, which selection
 * policy.  Default-constructed fields mean "baseline on the default
 * machine".
 *
 * The `workload` / `altInput` / `profileFromAltInput` fields identify
 * the program to a Runner (which owns the ProgramContexts);
 * ProgramContext::run ignores them because the context *is* the
 * program.
 */
struct RunRequest
{
    /** Which benchmark (Runner-level; ignored by ProgramContext). */
    workloads::WorkloadSpec workload{};

    /** Build with the alternate input set (Fig. 9, Runner-level). */
    bool altInput = false;

    /** The simulated machine. */
    uarch::CoreConfig config{};

    /** Selection policy; nullopt = baseline (no mini-graphs). */
    std::optional<minigraph::SelectorKind> selector{};

    /**
     * Machine the slack profile is collected on (cross-training);
     * defaults to `config` ("self-trained").
     */
    std::optional<uarch::CoreConfig> profileConfig{};

    /**
     * Train the slack profile on the *other* input set's build of the
     * same workload (the Figure-9 cross-input study; Runner-level).
     */
    bool profileFromAltInput = false;

    /** Externally supplied slack profile (overrides profileConfig). */
    const profile::SlackProfileData *profile = nullptr;

    /**
     * Simulate an explicit chosen candidate set instead of running a
     * selector (the Figure-8 exhaustive study); `selector` then only
     * configures the Slack-Dynamic hardware (default Struct-All).
     */
    std::optional<std::vector<minigraph::Candidate>> chosen{};

    /** MGT capacity for selection. */
    uint32_t templateBudget = 512;

    /**
     * Collect a pipeline trace of the final timing run and write the
     * configured Konata / Chrome files (see docs/TRACING.md).  Forces
     * a fresh simulation (bypasses the baseline cache).
     */
    std::optional<trace::TraceConfig> trace{};
};

/** Result of one experiment job. */
struct RunResult
{
    uarch::SimResult sim;
    uint32_t templatesUsed = 0;
    size_t instances = 0;

    /** Labels aligned with sim.mgTemplates (trace::templateLabel). */
    std::vector<std::string> templateNames;

    /** False if the job threw; `error` holds the message. */
    bool ok = true;
    std::string error;

    /** Dynamic coverage measured at commit. */
    double coverage() const { return sim.coverage(); }

    /** IPC over original-program instructions. */
    double ipc() const { return sim.ipc(); }
};

/**
 * Per-program experiment context: owns the program, its execution
 * counts, and lazily computed slack profiles and baseline runs.  The
 * caches are guarded by an internal mutex; a context may be shared by
 * concurrent jobs (see sim/runner.h).
 */
class ProgramContext
{
  public:
    /**
     * @param spec       which benchmark
     * @param alt_input  build with the alternate input set (Fig. 9)
     */
    explicit ProgramContext(const workloads::WorkloadSpec &spec,
                            bool alt_input = false);

    /** Wrap an already-built program (used by tests/examples). */
    explicit ProgramContext(assembler::Program prog);

    const assembler::Program &program() const { return prog; }

    /** Per-PC dynamic execution counts (computed once). */
    const minigraph::ExecCounts &counts();

    /**
     * Slack profile collected on the given configuration (cached by
     * configuration name).
     */
    const profile::SlackProfileData &profileOn(
        const uarch::CoreConfig &config);

    /** Simulate the original program (no mini-graphs); cached. */
    const uarch::SimResult &baseline(const uarch::CoreConfig &config);

    /**
     * Execute one job on this program: baseline, selector pipeline
     * (filter + select + rewrite + simulate) or explicit chosen set,
     * per the request fields.  Runner-level fields (`workload`,
     * `altInput`, `profileFromAltInput`) are ignored.
     */
    RunResult run(const RunRequest &req);

    /** The full enumerated candidate pool (cached). */
    const std::vector<minigraph::Candidate> &candidatePool();

  private:
    RunResult simulateChosen(
        const std::vector<minigraph::Candidate> &chosen,
        const uarch::CoreConfig &sim_config, minigraph::SelectorKind kind,
        const trace::TraceConfig *trc = nullptr);

    assembler::Program prog;

    /** Guards the lazy caches below (not `prog`, which is const after
     *  construction). */
    std::mutex cacheMu;
    std::unique_ptr<minigraph::ExecCounts> execCounts;
    std::map<std::string, profile::SlackProfileData> profiles;
    std::map<std::string, uarch::SimResult> baselines;
    std::unique_ptr<std::vector<minigraph::Candidate>> pool;
};

/** Configure the Slack-Dynamic hardware flags for a selector. */
uarch::CoreConfig configForSelector(const uarch::CoreConfig &base,
                                    minigraph::SelectorKind kind);

} // namespace mg::sim

#endif // MG_SIM_EXPERIMENT_H
