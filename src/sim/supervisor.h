/**
 * @file
 * Process-isolated run execution: one fork()ed sandbox per run, so a
 * native crash, sanitizer abort, OOM kill, or runaway loop in one
 * experiment is captured as a structured RunError instead of taking
 * the whole batch (and every completed result) down with it.
 *
 * The child executes the request against *fresh* ProgramContexts (it
 * must not touch mutexes other runner threads may have held at fork
 * time) and marshals its result back over a pipe as one line of the
 * deterministic stats JSON (trace/stats_json — the same bytes
 * `mgsim --json` prints), so an isolated batch's output is
 * byte-identical to an in-process one.  The parent:
 *
 *  - captures the child's stdout/stderr and keeps the tail for the
 *    error report;
 *  - applies the watchdog: if the child exceeds its timeout it is
 *    SIGKILLed and the run reported as ErrorClass::Timeout;
 *  - on a fatal signal in the child, reads the "last known cycle"
 *    the child's signal handler managed to write before dying;
 *  - classifies every other outcome into the ErrorClass taxonomy
 *    (see docs/ROBUSTNESS.md).
 *
 * Cost: each sandboxed run rebuilds its program artefacts (profile,
 * candidate pool, baseline) instead of sharing the runner's caches —
 * isolation trades throughput for fault containment.
 */

#ifndef MG_SIM_SUPERVISOR_H
#define MG_SIM_SUPERVISOR_H

#include "sim/experiment.h"

namespace mg::sim
{

/** Sandbox policy for one isolated run. */
struct SupervisorOptions
{
    /** Watchdog timeout in seconds; 0 = no watchdog. */
    double timeoutSec = 0.0;

    /**
     * Bytes of child stderr kept for the error report.  The parent's
     * buffer never grows past this cap regardless of how much the
     * child writes; a truncated tail is prefixed with an explicit
     * "[stderr tail: last N of M bytes]" marker.
     */
    size_t stderrTailBytes = 4096;
};

/**
 * Execute one request in a forked sandbox and return its result (or
 * a structured error; never throws on a child failure).
 *
 * The request's Runner-level fields (`workload`, `altInput`,
 * `profileFromAltInput`) are honoured: the child builds the contexts
 * it needs.  `RunRequest::auditHook` is installed on the timing core
 * inside the child.
 */
RunResult runIsolated(const RunRequest &req,
                      const SupervisorOptions &opts);

/**
 * Execute one request in-process against fresh contexts: the
 * cross-training-aware body the sandbox child runs.  Exposed for the
 * runner's non-isolated per-context path and tests.
 */
RunResult runFresh(const RunRequest &req);

} // namespace mg::sim

#endif // MG_SIM_SUPERVISOR_H
