#include "sim/experiment.h"

#include <fstream>
#include <stdexcept>

#include "common/logging.h"
#include "profile/exec_counts.h"
#include "trace/chrome_trace.h"
#include "trace/konata.h"
#include "trace/stats_json.h"

namespace mg::sim
{

using minigraph::SelectorKind;

namespace
{

void
writeFileOrThrow(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary);
    out << contents;
    if (!out)
        throw std::runtime_error("cannot write trace file: " + path);
}

/** Write the Konata / Chrome exports a finished tracer collected. */
void
exportTrace(const trace::PipelineTracer &tracer)
{
    const trace::TraceConfig &tc = tracer.config();
    if (!tc.konataPath.empty())
        writeFileOrThrow(tc.konataPath,
                         trace::konataToString(tracer.records()));
    if (!tc.chromePath.empty())
        writeFileOrThrow(tc.chromePath,
                         trace::chromeTraceToString(tracer.records()));
}

} // namespace

ProgramContext::ProgramContext(const workloads::WorkloadSpec &spec,
                               bool alt_input)
    : prog(workloads::buildWorkload(spec, alt_input).program)
{
}

ProgramContext::ProgramContext(assembler::Program p) : prog(std::move(p))
{
}

const minigraph::ExecCounts &
ProgramContext::counts()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    if (!execCounts) {
        execCounts = std::make_unique<minigraph::ExecCounts>(
            profile::countExecutions(prog));
    }
    return *execCounts;
}

const profile::SlackProfileData &
ProgramContext::profileOn(const uarch::CoreConfig &config)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = profiles.find(config.name);
    if (it == profiles.end()) {
        it = profiles
                 .emplace(config.name,
                          profile::profileProgram(prog, config))
                 .first;
    }
    return it->second;
}

const uarch::SimResult &
ProgramContext::baseline(const uarch::CoreConfig &config)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = baselines.find(config.name);
    if (it == baselines.end()) {
        uarch::Core core(config, prog);
        it = baselines.emplace(config.name, core.run()).first;
    }
    return it->second;
}

const std::vector<minigraph::Candidate> &
ProgramContext::candidatePool()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    if (!pool) {
        pool = std::make_unique<std::vector<minigraph::Candidate>>(
            minigraph::enumerateCandidates(prog));
    }
    return *pool;
}

uarch::CoreConfig
configForSelector(const uarch::CoreConfig &base, SelectorKind kind)
{
    uarch::CoreConfig cfg = base;
    cfg.slackDynamicEnabled = minigraph::selectorIsDynamic(kind);
    switch (kind) {
      case SelectorKind::SlackDynamic:
        cfg.slackDynamicIdeal = false;
        cfg.slackDynamicConsumerCheck = true;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamic:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = true;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamicDelay:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = false;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamicSial:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = false;
        cfg.slackDynamicSial = true;
        break;
      default:
        break;
    }
    return cfg;
}

RunResult
ProgramContext::run(const RunRequest &req)
{
    const trace::TraceConfig *trc =
        req.trace ? &*req.trace : nullptr;

    if (req.chosen) {
        return simulateChosen(*req.chosen, req.config,
                              req.selector.value_or(
                                  SelectorKind::StructAll),
                              trc);
    }

    if (!req.selector) {
        RunResult out;
        if (trc) {
            // Tracing needs a live core; bypass the baseline cache.
            trace::PipelineTracer tracer(*trc);
            uarch::Core core(req.config, prog);
            core.setProfiler(&tracer);
            out.sim = core.run();
            exportTrace(tracer);
        } else {
            out.sim = baseline(req.config);
        }
        return out;
    }

    SelectorKind kind = *req.selector;
    const profile::SlackProfileData *prof = req.profile;
    if (!prof && minigraph::selectorNeedsProfile(kind)) {
        prof = &profileOn(req.profileConfig ? *req.profileConfig
                                            : req.config);
    }

    std::vector<minigraph::Candidate> filtered =
        minigraph::filterPool(candidatePool(), kind, prog, prof);
    minigraph::SelectionResult sel =
        minigraph::selectGreedy(filtered, counts(), req.templateBudget);
    return simulateChosen(sel.chosen, req.config, kind, trc);
}

RunResult
ProgramContext::simulateChosen(
    const std::vector<minigraph::Candidate> &chosen,
    const uarch::CoreConfig &sim_config, SelectorKind kind,
    const trace::TraceConfig *trc)
{
    minigraph::RewrittenProgram rp = minigraph::rewrite(prog, chosen);
    uarch::CoreConfig cfg = configForSelector(sim_config, kind);

    uarch::Core core(cfg, rp.program, &rp.info);
    std::optional<trace::PipelineTracer> tracer;
    if (trc) {
        tracer.emplace(*trc);
        core.setProfiler(&*tracer);
    }

    RunResult out;
    out.sim = core.run();
    out.instances = rp.instanceCount();
    out.templatesUsed = static_cast<uint32_t>(rp.info.templates.size());
    out.templateNames.reserve(rp.info.templates.size());
    for (const isa::MgTemplate &t : rp.info.templates)
        out.templateNames.push_back(trace::templateLabel(t));

    if (tracer)
        exportTrace(*tracer);
    return out;
}

} // namespace mg::sim
