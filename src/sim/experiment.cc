#include "sim/experiment.h"

#include <fstream>
#include <stdexcept>

#include "common/logging.h"
#include "profile/exec_counts.h"
#include "trace/chrome_trace.h"
#include "trace/konata.h"
#include "trace/stats_json.h"

namespace mg::sim
{

using minigraph::SelectorKind;

namespace
{

void
writeFileOrThrow(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary);
    out << contents;
    if (!out)
        throw std::runtime_error("cannot write trace file: " + path);
}

/** Write the Konata / Chrome exports a finished tracer collected. */
void
exportTrace(const trace::PipelineTracer &tracer)
{
    const trace::TraceConfig &tc = tracer.config();
    if (!tc.konataPath.empty())
        writeFileOrThrow(tc.konataPath,
                         trace::konataToString(tracer.records()));
    if (!tc.chromePath.empty())
        writeFileOrThrow(tc.chromePath,
                         trace::chromeTraceToString(tracer.records()));
}

} // namespace

const char *
errorClassName(ErrorClass cls)
{
    switch (cls) {
    case ErrorClass::None: return "none";
    case ErrorClass::Exception: return "exception";
    case ErrorClass::Check: return "check";
    case ErrorClass::Oom: return "oom";
    case ErrorClass::Crash: return "crash";
    case ErrorClass::Timeout: return "timeout";
    case ErrorClass::Io: return "io";
    case ErrorClass::Unknown: return "unknown";
    }
    return "unknown";
}

std::optional<ErrorClass>
errorClassFromName(const std::string &name)
{
    for (ErrorClass cls :
         {ErrorClass::None, ErrorClass::Exception, ErrorClass::Check,
          ErrorClass::Oom, ErrorClass::Crash, ErrorClass::Timeout,
          ErrorClass::Io, ErrorClass::Unknown}) {
        if (name == errorClassName(cls))
            return cls;
    }
    return std::nullopt;
}

bool
errorClassTransient(ErrorClass cls)
{
    switch (cls) {
    case ErrorClass::Oom:
    case ErrorClass::Crash:
    case ErrorClass::Timeout:
    case ErrorClass::Io:
        return true;
    default:
        return false;
    }
}

trace::StatsMeta
metaForRun(const RunRequest &req, const RunResult &r,
           const std::string &workload_name)
{
    trace::StatsMeta meta;
    meta.workload = !workload_name.empty()
                        ? workload_name
                        : req.workload.name() +
                              (req.altInput ? "#alt" : "");
    meta.config = req.config.name;
    meta.selector =
        req.selector ? minigraph::nameOf(*req.selector) : "none";
    meta.templateNames = r.templateNames;
    meta.mgInstances = r.instances;
    meta.mgTemplatesUsed = r.templatesUsed;
    return meta;
}

trace::ErrorDetail
errorDetailOf(const RunError &err)
{
    trace::ErrorDetail d;
    d.cls = errorClassName(err.cls);
    d.signal = err.signal;
    d.exitStatus = err.exitStatus;
    d.lastCycle = err.lastCycle;
    d.attempts = err.attempts;
    d.stderrTail = err.stderrTail;
    return d;
}

ProgramContext::ProgramContext(const workloads::WorkloadSpec &spec,
                               bool alt_input)
    : prog(workloads::buildWorkload(spec, alt_input).program)
{
}

ProgramContext::ProgramContext(assembler::Program p) : prog(std::move(p))
{
}

const minigraph::ExecCounts &
ProgramContext::counts()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    if (!execCounts) {
        execCounts = std::make_unique<minigraph::ExecCounts>(
            profile::countExecutions(prog));
    }
    return *execCounts;
}

const profile::SlackProfileData &
ProgramContext::profileOn(const uarch::CoreConfig &config)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = profiles.find(config.name);
    if (it == profiles.end()) {
        it = profiles
                 .emplace(config.name,
                          profile::profileProgram(prog, config))
                 .first;
    }
    return it->second;
}

const uarch::SimResult &
ProgramContext::baseline(const uarch::CoreConfig &config)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = baselines.find(config.name);
    if (it == baselines.end()) {
        uarch::Core core(config, prog);
        it = baselines.emplace(config.name, core.run()).first;
    }
    return it->second;
}

const std::vector<minigraph::Candidate> &
ProgramContext::candidatePool()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    if (!pool) {
        pool = std::make_unique<std::vector<minigraph::Candidate>>(
            minigraph::enumerateCandidates(prog));
    }
    return *pool;
}

uarch::CoreConfig
configForSelector(const uarch::CoreConfig &base, SelectorKind kind)
{
    uarch::CoreConfig cfg = base;
    cfg.slackDynamicEnabled = minigraph::selectorIsDynamic(kind);
    switch (kind) {
      case SelectorKind::SlackDynamic:
        cfg.slackDynamicIdeal = false;
        cfg.slackDynamicConsumerCheck = true;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamic:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = true;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamicDelay:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = false;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamicSial:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = false;
        cfg.slackDynamicSial = true;
        break;
      default:
        break;
    }
    return cfg;
}

RunResult
ProgramContext::run(const RunRequest &req)
{
    const trace::TraceConfig *trc =
        req.trace ? &*req.trace : nullptr;

    if (req.chosen) {
        return simulateChosen(*req.chosen, req.config,
                              req.selector.value_or(
                                  SelectorKind::StructAll),
                              trc, req.auditHook);
    }

    if (!req.selector) {
        RunResult out;
        if (trc || req.auditHook) {
            // Tracing (or a test hook) needs a live core; bypass the
            // baseline cache.
            std::optional<trace::PipelineTracer> tracer;
            uarch::Core core(req.config, prog);
            if (trc) {
                tracer.emplace(*trc);
                core.setProfiler(&*tracer);
            }
            if (req.auditHook)
                core.setAuditTestHook(req.auditHook);
            out.sim = core.run();
            if (tracer)
                exportTrace(*tracer);
        } else {
            out.sim = baseline(req.config);
        }
        return out;
    }

    SelectorKind kind = *req.selector;
    const profile::SlackProfileData *prof = req.profile;
    if (!prof && minigraph::selectorNeedsProfile(kind)) {
        prof = &profileOn(req.profileConfig ? *req.profileConfig
                                            : req.config);
    }

    std::vector<minigraph::Candidate> filtered =
        minigraph::filterPool(candidatePool(), kind, prog, prof);
    minigraph::SelectionResult sel =
        minigraph::selectGreedy(filtered, counts(), req.templateBudget);
    return simulateChosen(sel.chosen, req.config, kind, trc,
                          req.auditHook);
}

RunResult
ProgramContext::simulateChosen(
    const std::vector<minigraph::Candidate> &chosen,
    const uarch::CoreConfig &sim_config, SelectorKind kind,
    const trace::TraceConfig *trc,
    const std::function<void(uarch::Core &)> &hook)
{
    minigraph::RewrittenProgram rp = minigraph::rewrite(prog, chosen);
    uarch::CoreConfig cfg = configForSelector(sim_config, kind);

    uarch::Core core(cfg, rp.program, &rp.info);
    std::optional<trace::PipelineTracer> tracer;
    if (trc) {
        tracer.emplace(*trc);
        core.setProfiler(&*tracer);
    }
    if (hook)
        core.setAuditTestHook(hook);

    RunResult out;
    out.sim = core.run();
    out.instances = rp.instanceCount();
    out.templatesUsed = static_cast<uint32_t>(rp.info.templates.size());
    out.templateNames.reserve(rp.info.templates.size());
    for (const isa::MgTemplate &t : rp.info.templates)
        out.templateNames.push_back(trace::templateLabel(t));
    out.templates = rp.info.templates;

    if (tracer)
        exportTrace(*tracer);
    return out;
}

} // namespace mg::sim
