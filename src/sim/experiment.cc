#include "sim/experiment.h"

#include "common/logging.h"
#include "profile/exec_counts.h"

namespace mg::sim
{

using minigraph::SelectorKind;

ProgramContext::ProgramContext(const workloads::WorkloadSpec &spec,
                               bool alt_input)
    : prog(workloads::buildWorkload(spec, alt_input).program)
{
}

ProgramContext::ProgramContext(assembler::Program p) : prog(std::move(p))
{
}

const minigraph::ExecCounts &
ProgramContext::counts()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    if (!execCounts) {
        execCounts = std::make_unique<minigraph::ExecCounts>(
            profile::countExecutions(prog));
    }
    return *execCounts;
}

const profile::SlackProfileData &
ProgramContext::profileOn(const uarch::CoreConfig &config)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = profiles.find(config.name);
    if (it == profiles.end()) {
        it = profiles
                 .emplace(config.name,
                          profile::profileProgram(prog, config))
                 .first;
    }
    return it->second;
}

const uarch::SimResult &
ProgramContext::baseline(const uarch::CoreConfig &config)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = baselines.find(config.name);
    if (it == baselines.end()) {
        uarch::Core core(config, prog);
        it = baselines.emplace(config.name, core.run()).first;
    }
    return it->second;
}

const std::vector<minigraph::Candidate> &
ProgramContext::candidatePool()
{
    std::lock_guard<std::mutex> lock(cacheMu);
    if (!pool) {
        pool = std::make_unique<std::vector<minigraph::Candidate>>(
            minigraph::enumerateCandidates(prog));
    }
    return *pool;
}

uarch::CoreConfig
configForSelector(const uarch::CoreConfig &base, SelectorKind kind)
{
    uarch::CoreConfig cfg = base;
    cfg.slackDynamicEnabled = minigraph::selectorIsDynamic(kind);
    switch (kind) {
      case SelectorKind::SlackDynamic:
        cfg.slackDynamicIdeal = false;
        cfg.slackDynamicConsumerCheck = true;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamic:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = true;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamicDelay:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = false;
        cfg.slackDynamicSial = false;
        break;
      case SelectorKind::IdealSlackDynamicSial:
        cfg.slackDynamicIdeal = true;
        cfg.slackDynamicConsumerCheck = false;
        cfg.slackDynamicSial = true;
        break;
      default:
        break;
    }
    return cfg;
}

RunResult
ProgramContext::run(const RunRequest &req)
{
    if (req.chosen) {
        return simulateChosen(*req.chosen, req.config,
                              req.selector.value_or(
                                  SelectorKind::StructAll));
    }

    if (!req.selector) {
        RunResult out;
        out.sim = baseline(req.config);
        return out;
    }

    SelectorKind kind = *req.selector;
    const profile::SlackProfileData *prof = req.profile;
    if (!prof && minigraph::selectorNeedsProfile(kind)) {
        prof = &profileOn(req.profileConfig ? *req.profileConfig
                                            : req.config);
    }

    std::vector<minigraph::Candidate> filtered =
        minigraph::filterPool(candidatePool(), kind, prog, prof);
    minigraph::SelectionResult sel =
        minigraph::selectGreedy(filtered, counts(), req.templateBudget);
    return simulateChosen(sel.chosen, req.config, kind);
}

RunResult
ProgramContext::simulateChosen(
    const std::vector<minigraph::Candidate> &chosen,
    const uarch::CoreConfig &sim_config, SelectorKind kind)
{
    minigraph::RewrittenProgram rp = minigraph::rewrite(prog, chosen);
    uarch::CoreConfig cfg = configForSelector(sim_config, kind);

    uarch::Core core(cfg, rp.program, &rp.info);
    RunResult out;
    out.sim = core.run();
    out.instances = rp.instanceCount();
    out.templatesUsed = static_cast<uint32_t>(rp.info.templates.size());
    return out;
}

} // namespace mg::sim
