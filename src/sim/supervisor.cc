#include "sim/supervisor.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <new>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.h"
#include "sim/fault.h"
#include "trace/stats_parse.h"

namespace mg::sim
{

namespace
{

/**
 * Child -> parent wire protocol, one record per line on the result
 * pipe:
 *
 *   "R <stats JSON>"   the run completed; payload is statsJson()
 *   "E <class> <JSON>" the run failed in a contained way; payload is
 *                      errorJson() carrying the message
 *   "C <cycle>"        written by the fatal-signal handler: the last
 *                      simulated cycle observed before dying
 */
constexpr char kResultTag = 'R';
constexpr char kErrorTag = 'E';
constexpr char kCycleTag = 'C';

/** Result-pipe fd the child's fatal-signal handler writes to. */
volatile int g_childResultFd = -1;

/** write() the whole buffer, retrying EINTR; best-effort. */
void
writeAll(int fd, const char *buf, size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, buf, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        buf += n;
        len -= static_cast<size_t>(n);
    }
}

/**
 * Fatal-signal handler installed in the sandbox child: report the
 * last simulated cycle, then die by the original signal.  Everything
 * here is async-signal-safe (lock-free atomic load, manual integer
 * formatting, write()).
 */
extern "C" void
childFatalHandler(int sig)
{
    int fd = g_childResultFd;
    if (fd >= 0) {
        char buf[32];
        size_t pos = sizeof buf;
        buf[--pos] = '\n';
        uint64_t c = lastObservedCycle();
        if (c == 0) {
            buf[--pos] = '0';
        } else {
            while (c > 0 && pos > 2) {
                buf[--pos] = static_cast<char>('0' + c % 10);
                c /= 10;
            }
        }
        buf[--pos] = ' ';
        buf[--pos] = kCycleTag;
        writeAll(fd, buf + pos, sizeof buf - pos);
    }
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void
installChildSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = childFatalHandler;
    sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        ::sigaction(sig, &sa, nullptr);
}

/** Child side: run the request and report over `fd`; never returns. */
[[noreturn]] void
childMain(const RunRequest &req, int result_fd)
{
    g_childResultFd = result_fd;
    installChildSignalHandlers();
    resetObservedCycle();

    RunRequest hooked = req;
    hooked.auditHook = makeCycleWatchHook(req.auditHook);

    std::string line;
    int exit_code = 0;
    try {
        RunResult r = runFresh(hooked);
        trace::StatsMeta meta = metaForRun(req, r);
        line = std::string(1, kResultTag) + " " +
               trace::statsJson(meta, r.sim) + "\n";
    } catch (const CheckError &e) {
        line = std::string(1, kErrorTag) + " " +
               std::string(errorClassName(ErrorClass::Check)) + " " +
               trace::errorJson(metaForRun(req, RunResult{}), e.what()) +
               "\n";
        exit_code = 1;
    } catch (const std::bad_alloc &) {
        line = std::string(1, kErrorTag) + " " +
               std::string(errorClassName(ErrorClass::Oom)) + " " +
               trace::errorJson(metaForRun(req, RunResult{}),
                                "allocation failure (std::bad_alloc)") +
               "\n";
        exit_code = 1;
    } catch (const std::exception &e) {
        line = std::string(1, kErrorTag) + " " +
               std::string(errorClassName(ErrorClass::Exception)) + " " +
               trace::errorJson(metaForRun(req, RunResult{}), e.what()) +
               "\n";
        exit_code = 1;
    } catch (...) {
        line = std::string(1, kErrorTag) + " " +
               std::string(errorClassName(ErrorClass::Unknown)) + " " +
               trace::errorJson(metaForRun(req, RunResult{}),
                                "non-standard exception") +
               "\n";
        exit_code = 1;
    }
    writeAll(result_fd, line.data(), line.size());
    // _exit, not exit: no atexit handlers or stream flushes of state
    // inherited from the (possibly threaded) parent.
    ::_exit(exit_code);
}

/** Keep at most `cap` trailing bytes of `buf`. */
void
trimToTail(std::string &buf, size_t cap)
{
    if (buf.size() > cap)
        buf.erase(0, buf.size() - cap);
}

struct ChildOutput
{
    std::string result; ///< result-pipe bytes
    std::string tail;   ///< stdout/stderr tail
    size_t errBytes = 0; ///< total stdout/stderr bytes the child wrote
    bool timedOut = false;
};

/**
 * Drain both child pipes until EOF (or until the deadline passes, in
 * which case the child is SIGKILLed and draining continues).
 */
ChildOutput
drainChild(pid_t pid, int result_fd, int err_fd,
           const SupervisorOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    const bool watchdog = opts.timeoutSec > 0;
    const auto deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                watchdog ? opts.timeoutSec : 0));

    ChildOutput out;
    bool result_open = true, err_open = true;
    char buf[4096];
    while (result_open || err_open) {
        struct pollfd fds[2];
        nfds_t n = 0;
        if (result_open)
            fds[n++] = {result_fd, POLLIN, 0};
        if (err_open)
            fds[n++] = {err_fd, POLLIN, 0};

        int timeout_ms = -1;
        if (watchdog && !out.timedOut) {
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline -
                                                       Clock::now())
                            .count();
            timeout_ms = left < 0 ? 0 : static_cast<int>(left) + 1;
        }
        int rc = ::poll(fds, n, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0) {
            // Watchdog expired: kill the sandbox, keep draining so
            // we still collect the stderr tail and cycle report.
            out.timedOut = true;
            ::kill(pid, SIGKILL);
            continue;
        }
        for (nfds_t i = 0; i < n; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            ssize_t got = ::read(fds[i].fd, buf, sizeof buf);
            if (got > 0) {
                std::string &dst = fds[i].fd == result_fd
                                       ? out.result
                                       : out.tail;
                dst.append(buf, static_cast<size_t>(got));
                if (fds[i].fd == err_fd) {
                    // Trim per read, not once at EOF: a worker that
                    // spews stderr forever must never grow the
                    // parent's buffer past the cap.
                    out.errBytes += static_cast<size_t>(got);
                    trimToTail(out.tail, opts.stderrTailBytes);
                }
            } else if (got == 0 ||
                       (got < 0 && errno != EINTR && errno != EAGAIN)) {
                if (fds[i].fd == result_fd)
                    result_open = false;
                else
                    err_open = false;
            }
        }
    }
    // A truncated tail gets an explicit marker so an error report
    // never silently presents the tail as the whole output.
    if (out.errBytes > out.tail.size())
        out.tail.insert(
            0, strprintf("[stderr tail: last %zu of %zu bytes]\n",
                         out.tail.size(), out.errBytes));
    return out;
}

/** The last protocol line with the given tag, without the tag. */
bool
lastTagged(const std::string &text, char tag, std::string &payload)
{
    bool found = false;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        size_t end = nl == std::string::npos ? text.size() : nl;
        if (end > pos + 1 && text[pos] == tag && text[pos + 1] == ' ') {
            payload = text.substr(pos + 2, end - pos - 2);
            found = true;
        }
        pos = nl == std::string::npos ? text.size() : nl + 1;
    }
    return found;
}

} // namespace

RunResult
runFresh(const RunRequest &req)
{
    ProgramContext ctx(req.workload, req.altInput);
    if (req.profileFromAltInput && !req.profile && req.selector &&
        minigraph::selectorNeedsProfile(*req.selector)) {
        ProgramContext trainer(req.workload, !req.altInput);
        const profile::SlackProfileData &prof = trainer.profileOn(
            req.profileConfig ? *req.profileConfig : req.config);
        RunRequest resolved = req;
        resolved.profile = &prof;
        resolved.profileFromAltInput = false;
        return ctx.run(resolved);
    }
    return ctx.run(req);
}

RunResult
runIsolated(const RunRequest &req, const SupervisorOptions &opts)
{
    RunResult out;

    int result_pipe[2], err_pipe[2];
    if (::pipe(result_pipe) != 0) {
        out.setError(ErrorClass::Io,
                     std::string("pipe: ") + std::strerror(errno));
        return out;
    }
    if (::pipe(err_pipe) != 0) {
        out.setError(ErrorClass::Io,
                     std::string("pipe: ") + std::strerror(errno));
        ::close(result_pipe[0]);
        ::close(result_pipe[1]);
        return out;
    }

    // Flush our own streams so the child doesn't replay buffered
    // output into its captured stdout/stderr.
    std::fflush(stdout);
    std::fflush(stderr);

    pid_t pid = ::fork();
    if (pid < 0) {
        out.setError(ErrorClass::Io,
                     std::string("fork: ") + std::strerror(errno));
        for (int fd : {result_pipe[0], result_pipe[1], err_pipe[0],
                       err_pipe[1]})
            ::close(fd);
        return out;
    }

    if (pid == 0) {
        ::close(result_pipe[0]);
        ::close(err_pipe[0]);
        // Capture everything the run prints.
        ::dup2(err_pipe[1], STDOUT_FILENO);
        ::dup2(err_pipe[1], STDERR_FILENO);
        if (err_pipe[1] != STDOUT_FILENO &&
            err_pipe[1] != STDERR_FILENO)
            ::close(err_pipe[1]);
        childMain(req, result_pipe[1]); // never returns
    }

    ::close(result_pipe[1]);
    ::close(err_pipe[1]);
    ChildOutput child =
        drainChild(pid, result_pipe[0], err_pipe[0], opts);
    ::close(result_pipe[0]);
    ::close(err_pipe[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    std::string payload;
    uint64_t last_cycle = 0;
    if (std::string cycle_str;
        lastTagged(child.result, kCycleTag, cycle_str))
        last_cycle = std::strtoull(cycle_str.c_str(), nullptr, 10);

    if (lastTagged(child.result, kResultTag, payload)) {
        trace::ParsedStats parsed;
        if (std::string err = trace::parseStatsJson(payload, parsed);
            !err.empty() || parsed.isError) {
            out.setError(ErrorClass::Io,
                         "cannot decode sandbox result: " +
                             (err.empty() ? "error record" : err));
            out.err.stderrTail = child.tail;
            return out;
        }
        out.sim = parsed.sim;
        out.instances = parsed.meta.mgInstances;
        out.templatesUsed =
            static_cast<uint32_t>(parsed.meta.mgTemplatesUsed);
        out.templateNames = parsed.meta.templateNames;
        out.statsJsonLine = payload;
        return out;
    }

    // No result: classify the failure.
    if (child.timedOut) {
        out.setError(ErrorClass::Timeout,
                     strprintf("watchdog timeout after %.1fs (child "
                               "SIGKILLed at cycle %llu)",
                               opts.timeoutSec,
                               static_cast<unsigned long long>(
                                   last_cycle)));
    } else if (lastTagged(child.result, kErrorTag, payload)) {
        size_t sp = payload.find(' ');
        std::string cls_name =
            sp == std::string::npos ? payload : payload.substr(0, sp);
        std::string json =
            sp == std::string::npos ? "" : payload.substr(sp + 1);
        ErrorClass cls = errorClassFromName(cls_name)
                             .value_or(ErrorClass::Unknown);
        std::string message = "sandbox run failed";
        trace::ParsedStats parsed;
        if (trace::parseStatsJson(json, parsed).empty() &&
            parsed.isError)
            message = parsed.error;
        out.setError(cls, message);
        if (WIFEXITED(status))
            out.err.exitStatus = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        out.setError(ErrorClass::Crash,
                     strprintf("sandbox child died on signal %d (%s) "
                               "at cycle %llu",
                               WTERMSIG(status),
                               strsignal(WTERMSIG(status)),
                               static_cast<unsigned long long>(
                                   last_cycle)));
        out.err.signal = WTERMSIG(status);
    } else {
        // Exited without producing a result (e.g. a sanitizer abort
        // path that calls _exit).
        out.setError(ErrorClass::Crash,
                     strprintf("sandbox child exited with status %d "
                               "without a result (cycle %llu)",
                               WIFEXITED(status) ? WEXITSTATUS(status)
                                                 : -1,
                               static_cast<unsigned long long>(
                                   last_cycle)));
        if (WIFEXITED(status))
            out.err.exitStatus = WEXITSTATUS(status);
    }
    out.err.lastCycle = last_cycle;
    out.err.stderrTail = child.tail;
    return out;
}

} // namespace mg::sim
