#include "sim/runner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "common/logging.h"
#include "sim/batch_options.h"
#include "sim/supervisor.h"
#include "trace/stats_parse.h"

namespace mg::sim
{

BatchSummary
summarize(const std::vector<RunResult> &results)
{
    BatchSummary s;
    s.total = results.size();
    for (const RunResult &r : results) {
        if (r.ok)
            ++s.ok;
        else
            ++s.failed;
        if (r.err.attempts > 1)
            ++s.retried;
        if (!r.ok && r.err.cls == ErrorClass::Timeout)
            ++s.timedOut;
        if (r.fromJournal)
            ++s.replayed;
    }
    return s;
}

unsigned
Runner::defaultJobs()
{
    return envJobs();
}

Runner::Runner(Options o) : opts(resolveRunnerOptions(o))
{
    nThreads = opts.jobs ? opts.jobs : 1;

    fault = opts.fault;

    if (!opts.journalPath.empty()) {
        if (opts.resume) {
            journal::LoadResult loaded =
                journal::load(opts.journalPath);
            if (loaded.dropped) {
                mg_warn("journal '%s': dropped %zu corrupt entr%s "
                        "(%s); resuming from the last valid entry",
                        opts.journalPath.c_str(), loaded.dropped,
                        loaded.dropped == 1 ? "y" : "ies",
                        loaded.warning.c_str());
            }
            resumeEntries = std::move(loaded.entries);
        }
        if (std::string err = journalWriter.open(opts.journalPath);
            !err.empty())
            mg_warn("%s (journalling disabled)", err.c_str());
    }

    if (nThreads > 1) {
        workers.reserve(nThreads);
        for (unsigned i = 0; i < nThreads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &t : workers)
        t.join();
}

ProgramContext &
Runner::context(const workloads::WorkloadSpec &spec, bool alt_input)
{
    std::string key = spec.name() + (alt_input ? "#alt" : "");
    ContextSlot *slot;
    {
        std::lock_guard<std::mutex> lock(ctxMu);
        auto &entry = contexts[key];
        if (!entry)
            entry = std::make_unique<ContextSlot>();
        slot = entry.get();
    }
    // Build outside the map lock so context construction for
    // different programs can proceed concurrently.
    std::call_once(slot->once, [&] {
        slot->ctx = std::make_unique<ProgramContext>(spec, alt_input);
    });
    return *slot->ctx;
}

RunResult
Runner::execute(const RunRequest &req)
{
    RunResult out;
    try {
        ProgramContext &ctx = context(req.workload, req.altInput);
        if (req.profileFromAltInput && !req.profile && req.selector &&
            minigraph::selectorNeedsProfile(*req.selector)) {
            // Train on the *other* input set's build of this workload.
            ProgramContext &trainer =
                context(req.workload, !req.altInput);
            const profile::SlackProfileData &prof = trainer.profileOn(
                req.profileConfig ? *req.profileConfig : req.config);
            RunRequest resolved = req;
            resolved.profile = &prof;
            resolved.profileFromAltInput = false;
            return ctx.run(resolved);
        }
        return ctx.run(req);
    } catch (const CheckError &e) {
        out.setError(ErrorClass::Check, e.what());
    } catch (const std::bad_alloc &) {
        out.setError(ErrorClass::Oom,
                     "allocation failure (std::bad_alloc)");
    } catch (const std::exception &e) {
        out.setError(ErrorClass::Exception, e.what());
    } catch (...) {
        out.setError(ErrorClass::Unknown, "non-standard exception");
    }
    return out;
}

RunResult
Runner::executeOnce(const RunRequest &req, const std::string &key,
                    unsigned attempt)
{
    RunRequest armed = req;
    if (fault && fault->appliesTo(key, attempt)) {
        auto fault_hook = makeFaultHook(*fault);
        if (req.auditHook) {
            auto user = req.auditHook;
            armed.auditHook = [user, fault_hook](uarch::Core &core) {
                user(core);
                fault_hook(core);
            };
        } else {
            armed.auditHook = fault_hook;
        }
    }

    if (opts.isolate) {
        SupervisorOptions so;
        so.timeoutSec =
            req.timeoutSec > 0 ? req.timeoutSec : opts.timeoutSec;
        return runIsolated(armed, so);
    }
    return execute(armed);
}

RunResult
Runner::executeJob(const RunRequest &req)
{
    const std::string key = journal::runKey(req);

    // Resume: replay a completed run from the journal.
    if (auto it = resumeEntries.find(key); it != resumeEntries.end()) {
        trace::ParsedStats parsed;
        // Entries were validated at load time; parse cannot fail.
        trace::parseStatsJson(it->second, parsed);
        RunResult out;
        out.sim = parsed.sim;
        out.instances = parsed.meta.mgInstances;
        out.templatesUsed =
            static_cast<uint32_t>(parsed.meta.mgTemplatesUsed);
        out.templateNames = parsed.meta.templateNames;
        out.statsJsonLine = it->second;
        out.fromJournal = true;
        out.err.attempts = 0;
        return out;
    }

    RunResult r;
    double backoff = opts.backoffSec;
    double backoff_total = 0.0;
    for (unsigned attempt = 0;; ++attempt) {
        r = executeOnce(req, key, attempt);
        r.err.attempts = attempt + 1;
        if (r.ok || !errorClassTransient(r.err.cls) ||
            attempt >= opts.retries)
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff));
        backoff_total += backoff;
        backoff *= 2;
    }
    r.err.backoffSec = backoff_total;

    if (r.ok && journalWriter.isOpen()) {
        if (r.statsJsonLine.empty())
            r.statsJsonLine =
                trace::statsJson(metaForRun(req, r), r.sim);
        journalWriter.append(key, r.statsJsonLine);
    }
    return r;
}

std::vector<RunResult>
Runner::run(const std::vector<RunRequest> &batch, const std::string &phase)
{
    std::vector<RunResult> results(batch.size());
    if (batch.empty())
        return results;

    auto report = [&](size_t done) {
        if (opts.progress) {
            std::fprintf(stderr, "[%s] %zu/%zu\n",
                         phase.empty() ? "batch" : phase.c_str(), done,
                         batch.size());
        }
    };

    if (nThreads == 1) {
        for (size_t i = 0; i < batch.size(); ++i) {
            results[i] = executeJob(batch[i]);
            report(i + 1);
        }
        return results;
    }

    BatchState state;
    state.reqs = &batch;
    state.results = &results;
    state.phase = phase;
    {
        std::lock_guard<std::mutex> lock(mu);
        cur = &state;
    }
    cvWork.notify_all();
    {
        std::unique_lock<std::mutex> lock(mu);
        cvDone.wait(lock,
                    [&] { return state.done == batch.size(); });
        cur = nullptr;
    }
    return results;
}

void
Runner::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cvWork.wait(lock, [&] {
            return stopping ||
                   (cur && cur->next < cur->reqs->size());
        });
        if (stopping)
            return;
        BatchState *b = cur;
        size_t i = b->next++;
        lock.unlock();

        // Nothing may escape a worker body: an uncaught exception
        // here would std::terminate the whole batch.  executeJob
        // already catches everything; this is the last line of
        // defence (e.g. an allocation failure in the result copy).
        RunResult r;
        try {
            r = executeJob((*b->reqs)[i]);
        } catch (const std::bad_alloc &) {
            r.setError(ErrorClass::Oom,
                       "allocation failure marshalling the result");
        } catch (const std::exception &e) {
            r.setError(ErrorClass::Unknown,
                       std::string("worker body threw: ") + e.what());
        } catch (...) {
            r.setError(ErrorClass::Unknown, "worker body threw");
        }

        lock.lock();
        (*b->results)[i] = std::move(r);
        ++b->done;
        if (opts.progress) {
            std::fprintf(stderr, "[%s] %zu/%zu\n",
                         b->phase.empty() ? "batch" : b->phase.c_str(),
                         b->done, b->reqs->size());
        }
        if (b->done == b->reqs->size())
            cvDone.notify_all();
    }
}

} // namespace mg::sim
