#include "sim/runner.h"

#include <cstdio>
#include <cstdlib>

namespace mg::sim
{

unsigned
Runner::defaultJobs()
{
    if (const char *env = std::getenv("MG_JOBS")) {
        long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

Runner::Runner(Options o) : opts(o)
{
    nThreads = opts.jobs ? opts.jobs : defaultJobs();
    if (nThreads < 1)
        nThreads = 1;
    if (nThreads > 1) {
        workers.reserve(nThreads);
        for (unsigned i = 0; i < nThreads; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &t : workers)
        t.join();
}

ProgramContext &
Runner::context(const workloads::WorkloadSpec &spec, bool alt_input)
{
    std::string key = spec.name() + (alt_input ? "#alt" : "");
    ContextSlot *slot;
    {
        std::lock_guard<std::mutex> lock(ctxMu);
        auto &entry = contexts[key];
        if (!entry)
            entry = std::make_unique<ContextSlot>();
        slot = entry.get();
    }
    // Build outside the map lock so context construction for
    // different programs can proceed concurrently.
    std::call_once(slot->once, [&] {
        slot->ctx = std::make_unique<ProgramContext>(spec, alt_input);
    });
    return *slot->ctx;
}

RunResult
Runner::execute(const RunRequest &req)
{
    try {
        ProgramContext &ctx = context(req.workload, req.altInput);
        if (req.profileFromAltInput && !req.profile && req.selector &&
            minigraph::selectorNeedsProfile(*req.selector)) {
            // Train on the *other* input set's build of this workload.
            ProgramContext &trainer =
                context(req.workload, !req.altInput);
            const profile::SlackProfileData &prof = trainer.profileOn(
                req.profileConfig ? *req.profileConfig : req.config);
            RunRequest resolved = req;
            resolved.profile = &prof;
            resolved.profileFromAltInput = false;
            return ctx.run(resolved);
        }
        return ctx.run(req);
    } catch (const std::exception &e) {
        RunResult out;
        out.ok = false;
        out.error = e.what();
        return out;
    }
}

std::vector<RunResult>
Runner::run(const std::vector<RunRequest> &batch, const std::string &phase)
{
    std::vector<RunResult> results(batch.size());
    if (batch.empty())
        return results;

    auto report = [&](size_t done) {
        if (opts.progress) {
            std::fprintf(stderr, "[%s] %zu/%zu\n",
                         phase.empty() ? "batch" : phase.c_str(), done,
                         batch.size());
        }
    };

    if (nThreads == 1) {
        for (size_t i = 0; i < batch.size(); ++i) {
            results[i] = execute(batch[i]);
            report(i + 1);
        }
        return results;
    }

    BatchState state;
    state.reqs = &batch;
    state.results = &results;
    state.phase = phase;
    {
        std::lock_guard<std::mutex> lock(mu);
        cur = &state;
    }
    cvWork.notify_all();
    {
        std::unique_lock<std::mutex> lock(mu);
        cvDone.wait(lock,
                    [&] { return state.done == batch.size(); });
        cur = nullptr;
    }
    return results;
}

void
Runner::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cvWork.wait(lock, [&] {
            return stopping ||
                   (cur && cur->next < cur->reqs->size());
        });
        if (stopping)
            return;
        BatchState *b = cur;
        size_t i = b->next++;
        lock.unlock();

        RunResult r = execute((*b->reqs)[i]);

        lock.lock();
        (*b->results)[i] = std::move(r);
        ++b->done;
        if (opts.progress) {
            std::fprintf(stderr, "[%s] %zu/%zu\n",
                         b->phase.empty() ? "batch" : b->phase.c_str(),
                         b->done, b->reqs->size());
        }
        if (b->done == b->reqs->size())
            cvDone.notify_all();
    }
}

} // namespace mg::sim
