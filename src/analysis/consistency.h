/**
 * @file
 * Static-vs-dynamic serialization consistency checking.
 *
 * The timing core accounts serialization dynamically (per-template
 * issue counts, external-input wait cycles, internal chain-penalty
 * cycles, and the mg-external / mg-internal cycle-loss buckets); the
 * static analyzer predicts the same phenomena from program structure.
 * The two views are produced by disjoint code, so invariants relating
 * them catch real bugs on either side — an analyzer that mis-derives
 * a template's internal chain penalty, or a core that charges
 * external-serialization wait to a template with no serializing
 * input, shows up as a violation here.
 *
 * Every check is an *implication that must hold by construction*:
 *
 *  1. a template that never issued accumulated no wait/penalty;
 *  2. internal-penalty cycles are exactly issues x the template's
 *     internalChainPenalty() (the core charges the static penalty on
 *     every issue);
 *  3. a template with no serializing input accumulated no
 *     external-input wait;
 *  4. if no selected template has a positive internal chain penalty,
 *     the mg-internal loss bucket is empty;
 *  5. if no selected template has a serializing input, the
 *     mg-external loss bucket is empty.
 *
 * Violations are data, not exceptions, in the mg_lint style: the
 * checker describes every inconsistency it finds.
 *
 * The header takes plain counters plus isa::MgTemplate so it sits
 * below the uarch library: callers copy the three fields out of
 * uarch::MgTemplateSerialStats (tests) or any other stats source.
 */

#ifndef MG_ANALYSIS_CONSISTENCY_H
#define MG_ANALYSIS_CONSISTENCY_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/minigraph_types.h"

namespace mg::analysis
{

/** Dynamic serialization counters of one selected template. */
struct TemplateDynStats
{
    const isa::MgTemplate *tmpl = nullptr;
    uint64_t issues = 0;           ///< dynamic handle issues
    uint64_t extWaitCycles = 0;    ///< external-input wait cycles
    uint64_t intPenaltyCycles = 0; ///< internal chain-penalty cycles
};

/** One static/dynamic disagreement. */
struct ConsistencyFinding
{
    std::string where;   ///< e.g. "template 3"
    std::string message;
};

/** Result of one consistency pass. */
struct ConsistencyReport
{
    std::vector<ConsistencyFinding> findings;
    size_t checksRun = 0;

    bool clean() const { return findings.empty(); }

    /** Human-readable one-line-per-finding rendering. */
    std::string render() const;
};

/**
 * Check the dynamic serialization accounting of one run against the
 * static properties of its selected templates.
 *
 * @param templates        per-template dynamic counters
 * @param mg_external_loss the run's mg-external cycle-loss slots
 * @param mg_internal_loss the run's mg-internal cycle-loss slots
 */
ConsistencyReport
checkStaticDynamic(const std::vector<TemplateDynStats> &templates,
                   uint64_t mg_external_loss, uint64_t mg_internal_loss);

} // namespace mg::analysis

#endif // MG_ANALYSIS_CONSISTENCY_H
