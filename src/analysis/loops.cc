#include "analysis/loops.h"

#include <algorithm>

#include "common/logging.h"

namespace mg::analysis
{

using assembler::BasicBlock;
using assembler::Cfg;
using isa::Addr;
using isa::Instruction;
using isa::Opcode;

namespace
{

/**
 * Saturating product for static frequency estimates: trip counts
 * multiply per nesting level and must not overflow into nonsense.
 */
uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > kMaxFrequency / b)
        return kMaxFrequency;
    return std::min(a * b, kMaxFrequency);
}

/**
 * Find the unique definition of `reg` among the loop-body blocks and
 * report its constant step if it is `addi reg, reg, c`.  Returns
 * false if `reg` is not stepped exactly once per iteration by a
 * recognisable constant increment.
 */
bool
findInductionStep(const Cfg &cfg, const Loop &loop, uint8_t reg,
                  int64_t &step)
{
    const auto &prog = cfg.program();
    int defs = 0;
    for (uint32_t b : loop.body) {
        const BasicBlock &bb = cfg.blocks()[b];
        for (Addr pc = bb.first; pc <= bb.last; ++pc) {
            const Instruction &inst = prog.at(pc);
            if (inst.destReg() != static_cast<int>(reg))
                continue;
            ++defs;
            if (inst.op != Opcode::ADDI || inst.rs1 != reg ||
                inst.imm == 0)
                return false;
            step = inst.imm;
        }
    }
    return defs == 1;
}

/**
 * Find the unique constant value `reg` carries into the loop: exactly
 * one definition outside the loop body, and it is `li reg, K`.  r0 is
 * always the constant zero.  For the induction register the in-loop
 * step definition (already validated by findInductionStep) is skipped
 * with `skip_loop_defs`; for the bound register any in-loop
 * redefinition means it is not loop-invariant and the pattern fails.
 */
bool
findConstantValue(const Cfg &cfg, const Loop &loop, uint8_t reg,
                  bool skip_loop_defs, int64_t &value)
{
    if (reg == isa::kZeroReg) {
        value = 0;
        return true;
    }
    const auto &prog = cfg.program();
    int defs = 0;
    for (Addr pc = 0; pc < prog.size(); ++pc) {
        const Instruction &inst = prog.at(pc);
        if (inst.destReg() != static_cast<int>(reg))
            continue;
        if (loop.contains(cfg.blockIdOf(pc))) {
            if (skip_loop_defs)
                continue;
            return false; // redefined inside the loop
        }
        ++defs;
        if (inst.op != Opcode::LI)
            return false;
        value = inst.imm;
    }
    return defs == 1;
}

/**
 * Iterations of a counted loop whose continue condition is
 * `induction (op) bound` with the induction stepped by `step` from
 * `init`.  Returns 0 when the pattern does not resolve to a positive
 * finite count.
 */
uint64_t
countedTrips(Opcode op, int64_t init, int64_t bound, int64_t step)
{
    switch (op) {
      case Opcode::BNE: {
        // repeat while i != bound; must land exactly on the bound.
        int64_t span = bound - init;
        if (step == 0 || (span > 0) != (step > 0) || span % step != 0)
            return 0;
        return static_cast<uint64_t>(span / step);
      }
      case Opcode::BLT:
      case Opcode::BLTU: {
        // repeat while i < bound (unsigned variant treated the same:
        // the generated kernels count over non-negative ranges).
        if (step <= 0 || bound <= init)
            return 0;
        int64_t span = bound - init;
        return static_cast<uint64_t>((span + step - 1) / step);
      }
      case Opcode::BGE:
      case Opcode::BGEU: {
        // repeat while i >= bound (counting down).
        if (step >= 0 || init < bound)
            return 0;
        int64_t span = init - bound;
        return static_cast<uint64_t>(span / (-step)) + 1;
      }
      default:
        return 0;
    }
}

/**
 * Estimate one loop's trip count from the counted-loop patterns:
 * either the latch ends in a conditional branch back to the header
 * ("do-while" rotation), or the header ends in a conditional branch
 * that exits the loop ("while" rotation, latch jumps back
 * unconditionally).
 */
void
estimateTripCount(const Cfg &cfg, Loop &loop)
{
    const auto &prog = cfg.program();
    const BasicBlock &latch = cfg.blocks()[loop.latch];
    const BasicBlock &header = cfg.blocks()[loop.header];

    const Instruction *branch = nullptr;
    bool branch_continues = false; // taken path stays in the loop?

    const Instruction &latch_end = prog.at(latch.last);
    if (latch_end.isCondBranch() &&
        static_cast<Addr>(latch_end.imm) == header.first) {
        branch = &latch_end;
        branch_continues = true;
    } else {
        const Instruction &header_end = prog.at(header.last);
        if (header_end.isCondBranch() &&
            !loop.contains(cfg.blockIdOf(
                static_cast<Addr>(header_end.imm)))) {
            branch = &header_end;
            branch_continues = false;
        }
    }
    if (!branch)
        return;

    // Identify the induction side: the compared register stepped by a
    // constant inside the loop; the other side must be loop-invariant.
    for (int swap = 0; swap < 2; ++swap) {
        uint8_t ind = swap ? branch->rs2 : branch->rs1;
        uint8_t bnd = swap ? branch->rs1 : branch->rs2;
        if (ind == isa::kZeroReg)
            continue;
        int64_t step = 0, init = 0, bound = 0;
        if (!findInductionStep(cfg, loop, ind, step) ||
            !findConstantValue(cfg, loop, ind, true, init) ||
            !findConstantValue(cfg, loop, bnd, false, bound))
            continue;

        Opcode cond = branch->op;
        if (!branch_continues) {
            // Exit branch: the continue condition is the negation.
            switch (cond) {
              case Opcode::BEQ: cond = Opcode::BNE; break;
              case Opcode::BNE: cond = Opcode::BEQ; break;
              case Opcode::BLT: cond = Opcode::BGE; break;
              case Opcode::BGE: cond = Opcode::BLT; break;
              case Opcode::BLTU: cond = Opcode::BGEU; break;
              case Opcode::BGEU: cond = Opcode::BLTU; break;
              default: break;
            }
        }
        if (swap) {
            // bound (op) induction: mirror the comparison.
            switch (cond) {
              case Opcode::BLT: cond = Opcode::BGE; break;
              case Opcode::BGE: cond = Opcode::BLT; break;
              case Opcode::BLTU: cond = Opcode::BGEU; break;
              case Opcode::BGEU: cond = Opcode::BLTU; break;
              default: break; // beq/bne are symmetric
            }
            // After mirroring, the continue condition reads
            // `induction (cond) bound` again, except BGE/BGEU now
            // mean "repeat while bound <= i", i.e. i >= bound: the
            // same counting-down form countedTrips handles.
        }
        if (uint64_t trips = countedTrips(cond, init, bound, step)) {
            loop.tripCount = trips;
            loop.tripCountExact = true;
            return;
        }
    }
}

} // namespace

LoopInfo::LoopInfo(const Cfg &cfg_in, const Dominators &dom)
    : cfg(&cfg_in)
{
    const auto &blocks = cfg->blocks();
    size_t n = blocks.size();
    blockLoop.assign(n, -1);
    blockFreq.assign(n, 0);
    if (n == 0)
        return;

    // Back edges u->h with h dominating u form natural loops; other
    // retreating edges (target open on the DFS stack but not a
    // dominator) mark irreducible regions.
    std::vector<uint8_t> state(n, 0);
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(dom.entry(), 0);
    state[dom.entry()] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < blocks[b].succs.size()) {
            uint32_t s = blocks[b].succs[next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            } else if (state[s] == 1 && !dom.dominates(s, b)) {
                ++irreducible;
            }
            continue;
        }
        state[b] = 2;
        stack.pop_back();
    }

    // Collect natural loops (one per back edge; loops sharing a
    // header are merged).
    for (uint32_t u = 0; u < n; ++u) {
        if (!dom.reachable(u))
            continue;
        for (uint32_t h : blocks[u].succs) {
            if (!dom.dominates(h, u))
                continue;

            // Body: h, u, plus everything reaching u without passing
            // through h (reverse reachability over predecessors).
            std::vector<uint8_t> in_body(n, 0);
            in_body[h] = 1;
            std::vector<uint32_t> work;
            if (!in_body[u]) {
                in_body[u] = 1;
                work.push_back(u);
            }
            while (!work.empty()) {
                uint32_t b = work.back();
                work.pop_back();
                for (uint32_t p : blocks[b].preds) {
                    if (!dom.reachable(p) || in_body[p])
                        continue;
                    in_body[p] = 1;
                    work.push_back(p);
                }
            }

            // Merge into an existing loop with the same header.
            Loop *loop = nullptr;
            for (Loop &l : loopList) {
                if (l.header == h) {
                    loop = &l;
                    break;
                }
            }
            if (!loop) {
                loopList.push_back(Loop{});
                loop = &loopList.back();
                loop->header = h;
                loop->latch = u;
            }
            std::vector<uint32_t> merged;
            for (uint32_t b = 0; b < n; ++b) {
                if (in_body[b] || loop->contains(b))
                    merged.push_back(b);
            }
            loop->body = std::move(merged);
        }
    }

    // Nesting: parent = smallest strictly-larger loop containing the
    // header; innermost loop per block = smallest body containing it.
    for (size_t i = 0; i < loopList.size(); ++i) {
        Loop &l = loopList[i];
        size_t best_size = SIZE_MAX;
        for (size_t j = 0; j < loopList.size(); ++j) {
            if (i == j)
                continue;
            const Loop &o = loopList[j];
            if (o.body.size() > l.body.size() &&
                o.contains(l.header) && o.body.size() < best_size) {
                best_size = o.body.size();
                l.parent = static_cast<int>(j);
            }
        }
    }
    for (Loop &l : loopList) {
        uint32_t d = 1;
        for (int p = l.parent; p >= 0; p = loopList[p].parent)
            ++d;
        l.depth = d;
    }
    for (uint32_t b = 0; b < n; ++b) {
        size_t best_size = SIZE_MAX;
        for (size_t i = 0; i < loopList.size(); ++i) {
            const Loop &l = loopList[i];
            if (l.contains(b) && l.body.size() < best_size) {
                best_size = l.body.size();
                blockLoop[b] = static_cast<int>(i);
            }
        }
    }

    for (Loop &l : loopList)
        estimateTripCount(*cfg, l);

    // Static frequency: product of enclosing trip counts.
    for (uint32_t b = 0; b < n; ++b) {
        if (!dom.reachable(b))
            continue;
        uint64_t f = 1;
        for (int i = blockLoop[b]; i >= 0; i = loopList[i].parent)
            f = satMul(f, loopList[i].tripCount);
        blockFreq[b] = f;
    }
}

uint32_t
LoopInfo::loopDepthOf(uint32_t block_id) const
{
    int i = blockLoop[block_id];
    return i < 0 ? 0 : loopList[i].depth;
}

uint32_t
LoopInfo::maxDepth() const
{
    uint32_t d = 0;
    for (const Loop &l : loopList)
        d = std::max(d, l.depth);
    return d;
}

} // namespace mg::analysis
