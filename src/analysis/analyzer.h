/**
 * @file
 * Whole-program static analysis facade and static serialization
 * bounds.
 *
 * ProgramAnalysis bundles every analysis the serialization-aware
 * tooling needs over one program — CFG, liveness, dominators, natural
 * loops with static trip-count/frequency estimates, reaching
 * definitions and dataflow readiness heights — built once and shared
 * by the Slack-Static selector, the `mgsim analyze` report, the
 * analyzer-backed lint rules and the static-vs-dynamic consistency
 * checker.
 *
 * staticSerialBounds() is the analyzer's per-aggregation-site product:
 * for a mini-graph template instantiated at a given PC with given
 * external input registers, it bounds the serialization behaviour the
 * paper measures dynamically (§4.2) using only program structure —
 * the readiness height of each external input (how long the dataflow
 * chain feeding it is), whether a serializing input is fed by a
 * loop-carried recurrence (unbounded arrival), and the template's
 * internal chain penalty.  The bounds layer deliberately takes plain
 * ISA/assembler types so it sits below the minigraph library in the
 * link order; minigraph/static_rank.h adapts it to Candidate.
 */

#ifndef MG_ANALYSIS_ANALYZER_H
#define MG_ANALYSIS_ANALYZER_H

#include <array>
#include <cstdint>

#include "analysis/dataflow.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "assembler/cfg.h"
#include "assembler/liveness.h"
#include "assembler/program.h"
#include "isa/minigraph_types.h"

namespace mg::analysis
{

/** All static analyses over one program, built once. */
class ProgramAnalysis
{
  public:
    explicit ProgramAnalysis(const assembler::Program &prog);

    const assembler::Program &program() const { return *progP; }
    const assembler::Cfg &cfg() const { return cfgA; }
    const assembler::Liveness &liveness() const { return liveA; }
    const Dominators &dominators() const { return domA; }
    const LoopInfo &loops() const { return loopA; }
    const Dataflow &dataflow() const { return flowA; }

    /** Static execution-frequency estimate of the block holding pc. */
    uint64_t frequencyAt(isa::Addr pc) const
    {
        return loopA.frequencyOf(cfgA.blockIdOf(pc));
    }

    /** True if pc's block is reachable from the program entry. */
    bool reachableAt(isa::Addr pc) const
    {
        return domA.reachable(cfgA.blockIdOf(pc));
    }

  private:
    const assembler::Program *progP;
    assembler::Cfg cfgA;
    assembler::Liveness liveA;
    Dominators domA;
    LoopInfo loopA;
    Dataflow flowA;
};

/**
 * Static serialization bounds for one mini-graph aggregation site.
 *
 * Mirrors the dynamic quantities the timing core accounts per
 * template (uarch::MgTemplateSerialStats): external input wait and
 * internal chain penalty — but derived purely from program structure.
 */
struct StaticSerialBounds
{
    /** Readiness height of each external input slot's value. */
    std::array<uint32_t, isa::kMaxMgInputs> inputHeight{};

    /** Max height over *serializing* slots (feeding a non-first op). */
    uint32_t serializingHeight = 0;

    /** Max height over non-serializing slots (handle issues no
     *  earlier than these arrive anyway). */
    uint32_t baseHeight = 0;

    /** The template's structural internal chain penalty (cycles). */
    uint32_t internalChainPenalty = 0;

    /** Any serializing input at all? */
    bool hasSerializingInput = false;

    /** A serializing input's height hit the saturation cap (its
     *  dataflow chain contains a loop recurrence). */
    bool saturated = false;

    /** A serializing input is the site's own output register carried
     *  around a loop — the aggregate feeds itself next iteration. */
    bool recurrent = false;

    /** Static frequency estimate of the site's block. */
    uint64_t frequency = 0;

    /**
     * Bound on the external-serialization delay of the handle's issue
     * relative to singleton execution: how much later the serializing
     * inputs can arrive than the inputs the first constituent needs
     * anyway.  Meaningful only when !saturated && !recurrent.
     */
    uint32_t externalDelayBound() const
    {
        return serializingHeight > baseHeight
                   ? serializingHeight - baseHeight
                   : 0;
    }
};

/**
 * Compute the static serialization bounds of a template instantiated
 * at `first_pc` over `len` original instructions with the given
 * external input registers and architectural output register (-1 for
 * none).
 */
StaticSerialBounds
staticSerialBounds(const ProgramAnalysis &pa, const isa::MgTemplate &tmpl,
                   isa::Addr first_pc, uint8_t len,
                   const std::array<uint8_t, isa::kMaxMgInputs> &input_regs,
                   int output_reg);

} // namespace mg::analysis

#endif // MG_ANALYSIS_ANALYZER_H
