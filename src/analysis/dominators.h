/**
 * @file
 * Dominator tree over a control-flow graph.
 *
 * Foundation of the whole-program static analyzer: natural-loop
 * detection (analysis/loops.h) needs dominance to recognise back
 * edges, and the analyzer-backed lint rules need reachability from
 * the entry block.  Computed with the Cooper-Harvey-Kennedy iterative
 * algorithm over a reverse-postorder numbering — O(blocks^2) worst
 * case but effectively linear on the structured CFGs the assembler
 * produces, and robust against the edge cases the tests pin down:
 * unreachable blocks (no dominator information, excluded from the
 * RPO), irreducible loops, and single-block programs.
 */

#ifndef MG_ANALYSIS_DOMINATORS_H
#define MG_ANALYSIS_DOMINATORS_H

#include <cstdint>
#include <vector>

#include "assembler/cfg.h"

namespace mg::analysis
{

/** Sentinel for "no block" (unreachable or the entry's idom). */
constexpr uint32_t kNoBlock = 0xffffffffu;

/** Dominator information for one CFG. */
class Dominators
{
  public:
    /** Compute dominators from the block holding the program entry. */
    explicit Dominators(const assembler::Cfg &cfg);

    /** Entry block id (the block containing the program entry PC). */
    uint32_t entry() const { return entryBlock; }

    /** True if the block is reachable from the entry block. */
    bool
    reachable(uint32_t block_id) const
    {
        return rpoNumber[block_id] != kNoBlock;
    }

    /**
     * Immediate dominator of a block; kNoBlock for the entry block
     * and for unreachable blocks.
     */
    uint32_t idom(uint32_t block_id) const { return idoms[block_id]; }

    /**
     * True if block `a` dominates block `b`.  Unreachable blocks
     * dominate nothing and are dominated by nothing (both directions
     * return false), matching the convention loop detection needs:
     * an edge into an unreachable region is never a back edge.
     */
    bool dominates(uint32_t a, uint32_t b) const;

    /** Reverse-postorder numbering (kNoBlock for unreachable). */
    uint32_t rpo(uint32_t block_id) const { return rpoNumber[block_id]; }

    /** Reachable block ids in reverse postorder. */
    const std::vector<uint32_t> &rpoOrder() const { return order; }

    /** Number of blocks reachable from the entry. */
    size_t reachableCount() const { return order.size(); }

  private:
    uint32_t entryBlock = 0;
    std::vector<uint32_t> idoms;
    std::vector<uint32_t> rpoNumber;
    std::vector<uint32_t> order;
};

} // namespace mg::analysis

#endif // MG_ANALYSIS_DOMINATORS_H
