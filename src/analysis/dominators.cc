#include "analysis/dominators.h"

#include <algorithm>

#include "common/logging.h"

namespace mg::analysis
{

using assembler::BasicBlock;
using assembler::Cfg;

Dominators::Dominators(const Cfg &cfg)
{
    const auto &blocks = cfg.blocks();
    size_t n = blocks.size();
    idoms.assign(n, kNoBlock);
    rpoNumber.assign(n, kNoBlock);
    if (n == 0)
        return;

    entryBlock = cfg.blockIdOf(cfg.program().entry);

    // Iterative DFS producing a postorder over reachable blocks.
    std::vector<uint32_t> post;
    post.reserve(n);
    std::vector<uint8_t> state(n, 0); // 0 unvisited, 1 open, 2 done
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(entryBlock, 0);
    state[entryBlock] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const BasicBlock &bb = blocks[b];
        if (next < bb.succs.size()) {
            uint32_t s = bb.succs[next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
            continue;
        }
        state[b] = 2;
        post.push_back(b);
        stack.pop_back();
    }

    order.assign(post.rbegin(), post.rend());
    for (uint32_t i = 0; i < order.size(); ++i)
        rpoNumber[order[i]] = i;

    // Cooper-Harvey-Kennedy: iterate idom = intersect(processed preds)
    // to a fixpoint in reverse postorder.
    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpoNumber[a] > rpoNumber[b])
                a = idoms[a];
            while (rpoNumber[b] > rpoNumber[a])
                b = idoms[b];
        }
        return a;
    };

    idoms[entryBlock] = entryBlock; // temporary self-idom for intersect
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : order) {
            if (b == entryBlock)
                continue;
            uint32_t new_idom = kNoBlock;
            for (uint32_t p : blocks[b].preds) {
                if (!reachable(p) || idoms[p] == kNoBlock)
                    continue;
                new_idom = new_idom == kNoBlock ? p
                                                : intersect(p, new_idom);
            }
            if (new_idom != kNoBlock && idoms[b] != new_idom) {
                idoms[b] = new_idom;
                changed = true;
            }
        }
    }
    idoms[entryBlock] = kNoBlock; // the entry has no dominator parent
}

bool
Dominators::dominates(uint32_t a, uint32_t b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    // Walk b's dominator chain toward the entry; RPO numbers strictly
    // decrease along idom links, so the walk terminates.
    uint32_t cur = b;
    while (true) {
        if (cur == a)
            return true;
        uint32_t up = idoms[cur];
        if (up == kNoBlock)
            return false;
        cur = up;
    }
}

} // namespace mg::analysis
