#include "analysis/consistency.h"

#include "common/logging.h"

namespace mg::analysis
{

namespace
{

std::string
templateWhere(size_t idx)
{
    return "template " + std::to_string(idx);
}

void
finding(ConsistencyReport &rep, std::string where, std::string message)
{
    rep.findings.push_back(
        {std::move(where), std::move(message)});
}

} // namespace

std::string
ConsistencyReport::render() const
{
    std::string out;
    for (const auto &f : findings) {
        out += "  [static-dynamic] ";
        out += f.where;
        out += ": ";
        out += f.message;
        out += "\n";
    }
    return out;
}

ConsistencyReport
checkStaticDynamic(const std::vector<TemplateDynStats> &templates,
                   uint64_t mg_external_loss, uint64_t mg_internal_loss)
{
    ConsistencyReport rep;
    bool any_penalty = false;
    bool any_serializing = false;

    for (size_t i = 0; i < templates.size(); ++i) {
        const TemplateDynStats &t = templates[i];
        mg_assert(t.tmpl, "TemplateDynStats without a template");
        uint64_t penalty = t.tmpl->internalChainPenalty();
        bool serializing = t.tmpl->hasSerializingInput();
        any_penalty |= penalty > 0;
        any_serializing |= serializing;

        // 1. No issues, no accumulation.
        ++rep.checksRun;
        if (t.issues == 0 &&
            (t.extWaitCycles != 0 || t.intPenaltyCycles != 0)) {
            finding(rep, templateWhere(i),
                    "never issued but accumulated " +
                        std::to_string(t.extWaitCycles) + " ext-wait / " +
                        std::to_string(t.intPenaltyCycles) +
                        " int-penalty cycles");
        }

        // 2. Internal penalty is charged per issue, exactly.
        ++rep.checksRun;
        if (t.intPenaltyCycles != t.issues * penalty) {
            finding(rep, templateWhere(i),
                    "internal-penalty cycles " +
                        std::to_string(t.intPenaltyCycles) +
                        " != issues " + std::to_string(t.issues) +
                        " x static chain penalty " +
                        std::to_string(penalty));
        }

        // 3. External wait needs a serializing input.
        ++rep.checksRun;
        if (!serializing && t.extWaitCycles != 0) {
            finding(rep, templateWhere(i),
                    "no serializing input but " +
                        std::to_string(t.extWaitCycles) +
                        " external-wait cycles");
        }
    }

    // 4/5. Program-level loss buckets need a template to blame.
    ++rep.checksRun;
    if (!any_penalty && mg_internal_loss != 0) {
        finding(rep, "program",
                "mg-internal loss " + std::to_string(mg_internal_loss) +
                    " with no positive-chain-penalty template selected");
    }
    ++rep.checksRun;
    if (!any_serializing && mg_external_loss != 0) {
        finding(rep, "program",
                "mg-external loss " + std::to_string(mg_external_loss) +
                    " with no serializing-input template selected");
    }
    return rep;
}

} // namespace mg::analysis
