#include "analysis/analyzer.h"

#include <algorithm>

namespace mg::analysis
{

ProgramAnalysis::ProgramAnalysis(const assembler::Program &prog)
    : progP(&prog), cfgA(prog), liveA(cfgA), domA(cfgA),
      loopA(cfgA, domA), flowA(cfgA, domA)
{
}

StaticSerialBounds
staticSerialBounds(const ProgramAnalysis &pa, const isa::MgTemplate &tmpl,
                   isa::Addr first_pc, uint8_t len,
                   const std::array<uint8_t, isa::kMaxMgInputs> &input_regs,
                   int output_reg)
{
    StaticSerialBounds out;
    out.internalChainPenalty = tmpl.internalChainPenalty();
    out.frequency = pa.frequencyAt(first_pc);

    const Dataflow &flow = pa.dataflow();
    isa::Addr pc_after = first_pc + len;
    for (uint8_t s = 0; s < tmpl.numInputs; ++s) {
        // External inputs are read at the handle: their value is
        // whatever reaches the aggregate's first PC.
        uint32_t h = flow.valueHeightAt(first_pc, input_regs[s]);
        out.inputHeight[s] = h;
        if (!tmpl.inputIsSerializing(s)) {
            out.baseHeight = std::max(out.baseHeight, h);
            continue;
        }
        out.hasSerializingInput = true;
        out.serializingHeight = std::max(out.serializingHeight, h);
        if (h >= kHeightCap)
            out.saturated = true;

        // Loop-carried self-recurrence: the serializing input is the
        // site's own output register and one of its reaching
        // definitions lies inside the aggregate itself — the value
        // consumed is the previous dynamic instance's output.
        if (output_reg >= 0 &&
            input_regs[s] == static_cast<uint8_t>(output_reg)) {
            for (isa::Addr d : flow.reachingDefs(first_pc, input_regs[s])) {
                if (d >= first_pc && d < pc_after) {
                    out.recurrent = true;
                    break;
                }
            }
        }
    }
    return out;
}

} // namespace mg::analysis
