/**
 * @file
 * Natural-loop detection with static trip-count and block-frequency
 * estimates.
 *
 * A natural loop is the body of a back edge u->h where the header h
 * dominates the latch u.  Retreating edges whose target does not
 * dominate their source mark *irreducible* control flow; those
 * regions get no loop structure, only a program-level flag (and the
 * frequency estimator falls back to the default trip count for them).
 *
 * Trip counts are estimated purely from program structure: a counted
 * loop whose exit branch compares an induction register (stepped by a
 * constant inside the loop) against a loop-invariant bound register
 * defined by a single `li` (or against the branch's immediate
 * pattern) gets the exact count; everything else gets
 * kDefaultTripCount.  Static block frequency is the product of the
 * trip counts of the enclosing loops, saturated at kMaxFrequency —
 * the zero-simulation stand-in for a dynamic execution profile that
 * the Slack-Static selector and the sweep-service pre-filter use.
 */

#ifndef MG_ANALYSIS_LOOPS_H
#define MG_ANALYSIS_LOOPS_H

#include <cstdint>
#include <vector>

#include "analysis/dominators.h"

namespace mg::analysis
{

/** Trip-count estimate when the bound cannot be derived statically. */
constexpr uint64_t kDefaultTripCount = 8;

/** Saturation bound for static frequency products. */
constexpr uint64_t kMaxFrequency = 1ull << 40;

/** One natural loop. */
struct Loop
{
    uint32_t header = 0;        ///< header block id
    uint32_t latch = 0;         ///< source block of the back edge
    std::vector<uint32_t> body; ///< member block ids, ascending

    /** Nesting depth: 1 = outermost. */
    uint32_t depth = 1;

    /** Enclosing loop index (into LoopInfo::loops), or -1. */
    int parent = -1;

    /** Estimated iterations per entry. */
    uint64_t tripCount = kDefaultTripCount;

    /** True if tripCount came from a recognised counted-loop pattern. */
    bool tripCountExact = false;

    bool
    contains(uint32_t block_id) const
    {
        for (uint32_t b : body) {
            if (b == block_id)
                return true;
        }
        return false;
    }
};

/** Loop structure of one CFG. */
class LoopInfo
{
  public:
    LoopInfo(const assembler::Cfg &cfg, const Dominators &dom);

    const std::vector<Loop> &loops() const { return loopList; }

    /** Innermost loop containing the block (index), or -1. */
    int innermostLoopOf(uint32_t block_id) const
    {
        return blockLoop[block_id];
    }

    /** Loop nesting depth of a block (0 = not in any loop). */
    uint32_t loopDepthOf(uint32_t block_id) const;

    /**
     * Estimated executions of the block per program run: the product
     * of enclosing trip counts (1 outside all loops, 0 for blocks
     * unreachable from the entry), saturated at kMaxFrequency.
     */
    uint64_t frequencyOf(uint32_t block_id) const
    {
        return blockFreq[block_id];
    }

    /** Retreating edges that are not dominator back edges. */
    uint32_t irreducibleEdges() const { return irreducible; }

    /** Deepest nesting depth in the program (0 = loop-free). */
    uint32_t maxDepth() const;

  private:
    const assembler::Cfg *cfg;
    std::vector<Loop> loopList;
    std::vector<int> blockLoop;       ///< innermost loop per block
    std::vector<uint64_t> blockFreq;  ///< static frequency per block
    uint32_t irreducible = 0;
};

} // namespace mg::analysis

#endif // MG_ANALYSIS_LOOPS_H
