#include "analysis/dataflow.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace mg::analysis
{

using assembler::BasicBlock;
using assembler::Cfg;
using isa::Addr;
using isa::Instruction;

namespace
{

/** Per-register running height state used by the height fixpoint. */
using RegHeights = std::array<uint32_t, isa::kNumArchRegs>;

uint32_t
satAdd(uint32_t a, uint32_t b)
{
    return std::min(a + b, kHeightCap);
}

/**
 * Apply one instruction to the running per-register height state and
 * return the instruction's own readiness height.
 */
uint32_t
stepHeights(const Instruction &inst, RegHeights &regs)
{
    uint32_t operand_h = 0;
    auto srcs = inst.srcRegs();
    for (uint8_t i = 0; i < srcs.count; ++i)
        operand_h = std::max(operand_h, regs[srcs.regs[i]]);
    uint32_t h = satAdd(operand_h, inst.latency());
    int dest = inst.destReg();
    if (dest >= 0)
        regs[static_cast<size_t>(dest)] = h;
    return h;
}

} // namespace

Dataflow::Dataflow(const Cfg &cfg_in, const Dominators &dom_in)
    : cfg(&cfg_in), dom(&dom_in)
{
    const auto &prog = cfg->program();
    const auto &blocks = cfg->blocks();
    size_t n_pcs = prog.size();
    size_t n_blocks = blocks.size();

    defIndex.assign(n_pcs, -1);
    heights.assign(n_pcs, 0);
    if (n_pcs == 0)
        return;

    // --- Def-site numbering -----------------------------------------
    std::array<std::vector<uint32_t>, isa::kNumArchRegs> defs_of_reg;
    for (Addr pc = 0; pc < n_pcs; ++pc) {
        int dest = prog.at(pc).destReg();
        if (dest < 0)
            continue;
        defIndex[pc] = static_cast<int>(defs.size());
        defs_of_reg[static_cast<size_t>(dest)].push_back(
            static_cast<uint32_t>(defs.size()));
        defs.push_back(pc);
        defReg.push_back(static_cast<uint8_t>(dest));
    }
    defUses.assign(defs.size(), {});

    size_t n_defs = defs.size();
    words = (n_defs + 63) / 64;
    inSets.assign(n_blocks * words, 0);
    if (n_defs == 0)
        return;

    // --- Reaching definitions (forward may-analysis) ----------------
    auto set_bit = [](std::vector<uint64_t> &s, size_t base, size_t i) {
        s[base + i / 64] |= 1ull << (i % 64);
    };

    // GEN/KILL per block, derived by walking the block once.
    std::vector<uint64_t> gen(n_blocks * words, 0);
    std::vector<uint64_t> kill(n_blocks * words, 0);
    for (const BasicBlock &bb : blocks) {
        size_t base = bb.id * words;
        for (Addr pc = bb.first; pc <= bb.last; ++pc) {
            int di = defIndex[pc];
            if (di < 0)
                continue;
            // This def kills every other def of the same register.
            for (uint32_t other : defs_of_reg[defReg[di]]) {
                if (static_cast<int>(other) == di)
                    continue;
                set_bit(kill, base, other);
                gen[base + other / 64] &= ~(1ull << (other % 64));
            }
            set_bit(gen, base, static_cast<size_t>(di));
            kill[base + static_cast<size_t>(di) / 64] &=
                ~(1ull << (static_cast<size_t>(di) % 64));
        }
    }

    std::vector<uint64_t> outSets(n_blocks * words, 0);
    for (const BasicBlock &bb : blocks) {
        size_t base = bb.id * words;
        for (size_t w = 0; w < words; ++w)
            outSets[base + w] = gen[base + w];
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : dom->rpoOrder()) {
            size_t base = b * words;
            for (size_t w = 0; w < words; ++w) {
                uint64_t in = 0;
                for (uint32_t p : blocks[b].preds)
                    in |= outSets[p * words + w];
                uint64_t out =
                    gen[base + w] | (in & ~kill[base + w]);
                if (in != inSets[base + w] ||
                    out != outSets[base + w]) {
                    inSets[base + w] = in;
                    outSets[base + w] = out;
                    changed = true;
                }
            }
        }
    }

    // --- Def-use chains ---------------------------------------------
    std::vector<uint64_t> live(words);
    for (const BasicBlock &bb : blocks) {
        size_t base = bb.id * words;
        for (size_t w = 0; w < words; ++w)
            live[w] = inSets[base + w];
        for (Addr pc = bb.first; pc <= bb.last; ++pc) {
            const Instruction &inst = prog.at(pc);
            auto srcs = inst.srcRegs();
            for (uint8_t i = 0; i < srcs.count; ++i) {
                for (uint32_t d : defs_of_reg[srcs.regs[i]]) {
                    if (live[d / 64] >> (d % 64) & 1)
                        defUses[d].push_back(pc);
                }
            }
            int di = defIndex[pc];
            if (di < 0)
                continue;
            for (uint32_t other : defs_of_reg[defReg[di]])
                live[other / 64] &= ~(1ull << (other % 64));
            live[static_cast<size_t>(di) / 64] |=
                1ull << (static_cast<size_t>(di) % 64);
        }
    }
    // Deterministic, duplicate-free chains regardless of block order.
    for (auto &uses : defUses) {
        std::sort(uses.begin(), uses.end());
        uses.erase(std::unique(uses.begin(), uses.end()), uses.end());
    }

    // --- Readiness heights (per-register max lattice) ---------------
    // Forward fixpoint over a 32-entry height vector per block; the
    // join is element-wise max, the transfer walks the block.  Heights
    // saturate at kHeightCap so loop-carried recurrences converge.
    std::vector<RegHeights> blockIn(n_blocks);
    std::vector<RegHeights> blockOut(n_blocks);
    for (size_t b = 0; b < n_blocks; ++b) {
        blockIn[b].fill(0);
        blockOut[b].fill(0);
    }
    changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : dom->rpoOrder()) {
            RegHeights in{};
            for (uint32_t p : blocks[b].preds) {
                if (!dom->reachable(p))
                    continue;
                for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
                    in[r] = std::max(in[r], blockOut[p][r]);
            }
            RegHeights out = in;
            for (Addr pc = blocks[b].first; pc <= blocks[b].last; ++pc)
                stepHeights(prog.at(pc), out);
            if (in != blockIn[b] || out != blockOut[b]) {
                blockIn[b] = in;
                blockOut[b] = out;
                changed = true;
            }
        }
    }

    // Final walk: record per-instruction heights.
    for (uint32_t b : dom->rpoOrder()) {
        RegHeights regs = blockIn[b];
        for (Addr pc = blocks[b].first; pc <= blocks[b].last; ++pc) {
            heights[pc] = stepHeights(prog.at(pc), regs);
            if (heights[pc] >= kHeightCap)
                hitCap = true;
        }
    }

    entryHeights = std::move(blockIn);
}

std::vector<Addr>
Dataflow::reachingDefs(Addr pc, uint8_t reg) const
{
    std::vector<Addr> out;
    if (reg == isa::kZeroReg || defs.empty())
        return out;
    const BasicBlock &bb = cfg->blockOf(pc);
    size_t base = bb.id * words;

    // Replay the block's defs on top of the IN set up to (not
    // including) pc, then read off the survivors defining `reg`.
    std::vector<uint64_t> live(inSets.begin() + base,
                               inSets.begin() + base + words);
    for (Addr p = bb.first; p < pc; ++p) {
        int di = defIndex[p];
        if (di < 0)
            continue;
        for (size_t d = 0; d < defs.size(); ++d) {
            if (defReg[d] == defReg[di])
                live[d / 64] &= ~(1ull << (d % 64));
        }
        live[static_cast<size_t>(di) / 64] |=
            1ull << (static_cast<size_t>(di) % 64);
    }
    for (size_t d = 0; d < defs.size(); ++d) {
        if (defReg[d] == reg && (live[d / 64] >> (d % 64) & 1))
            out.push_back(defs[d]);
    }
    return out;
}

const std::vector<Addr> &
Dataflow::usesOf(Addr def_pc) const
{
    static const std::vector<Addr> empty;
    int di = defIndex[def_pc];
    return di < 0 ? empty : defUses[static_cast<size_t>(di)];
}

uint32_t
Dataflow::valueHeightAt(Addr pc, uint8_t reg) const
{
    if (reg == isa::kZeroReg || entryHeights.empty())
        return 0;
    const BasicBlock &bb = cfg->blockOf(pc);
    if (!dom->reachable(bb.id))
        return 0;
    RegHeights regs = entryHeights[bb.id];
    for (Addr p = bb.first; p < pc; ++p)
        stepHeights(cfg->program().at(p), regs);
    return regs[reg];
}

uint32_t
Dataflow::maxHeight() const
{
    uint32_t h = 0;
    for (uint32_t v : heights)
        h = std::max(h, v);
    return h;
}

} // namespace mg::analysis
