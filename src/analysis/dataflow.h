/**
 * @file
 * Reaching definitions, def-use chains, and dataflow readiness
 * heights over a CFG.
 *
 * The static serialization analysis needs to know, for every operand
 * of every instruction, which definitions can supply its value and
 * how long the dependence chain behind each of those definitions is.
 * Reaching definitions is the classic forward may-analysis over def
 * sites; the *readiness height* of a definition is the longest
 * def-to-use dataflow path (in cycles of execution latency, cache
 * hits assumed) that must complete before the defined value exists.
 *
 * Heights are computed by fixpoint iteration and saturate at
 * kHeightCap so loop-carried dependence cycles converge: a recurrence
 * pushes its members to the cap, which is exactly the right signal
 * for the Slack-Static selector (a serializing input fed by a
 * recurrence has unbounded arrival time).
 */

#ifndef MG_ANALYSIS_DATAFLOW_H
#define MG_ANALYSIS_DATAFLOW_H

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/dominators.h"
#include "assembler/cfg.h"

namespace mg::analysis
{

/** Saturation bound for readiness heights (dependence cycles). */
constexpr uint32_t kHeightCap = 1024;

/** Reaching definitions / def-use chains / readiness heights. */
class Dataflow
{
  public:
    Dataflow(const assembler::Cfg &cfg, const Dominators &dom);

    /** All definition sites (PCs that write a non-r0 register). */
    const std::vector<isa::Addr> &defSites() const { return defs; }

    /**
     * Definitions of `reg` reaching the instruction at `pc` (i.e.
     * possibly supplying the value `pc` reads).  Empty when the only
     * reaching value is the loader-initialised register state.
     */
    std::vector<isa::Addr> reachingDefs(isa::Addr pc, uint8_t reg) const;

    /** Uses (PCs) possibly reading the definition at `def_pc`. */
    const std::vector<isa::Addr> &usesOf(isa::Addr def_pc) const;

    /**
     * True if the definition at `def_pc` has no possible reader: no
     * use it reaches reads the defined register.  (The analyzer-backed
     * dead-output lint rule and dead-code diagnostics build on this.)
     */
    bool defIsDead(isa::Addr def_pc) const
    {
        return usesOf(def_pc).empty();
    }

    /**
     * Readiness height of the instruction at `pc`: execution latency
     * plus the longest reaching-definition height among its operands,
     * saturated at kHeightCap.  Instructions in unreachable blocks
     * have height 0.
     */
    uint32_t heightOf(isa::Addr pc) const { return heights[pc]; }

    /**
     * Readiness height of the value of `reg` consumed at `pc`: the
     * maximum height over its reaching definitions (0 when only the
     * initial register state reaches).
     */
    uint32_t valueHeightAt(isa::Addr pc, uint8_t reg) const;

    /** Largest instruction height in the program. */
    uint32_t maxHeight() const;

    /** True if height iteration hit the saturation cap anywhere. */
    bool saturated() const { return hitCap; }

  private:
    /** Dense index of a def site, or -1. */
    int defIndexOf(isa::Addr pc) const { return defIndex[pc]; }

    const assembler::Cfg *cfg;
    const Dominators *dom;

    std::vector<isa::Addr> defs;   ///< def sites in ascending PC order
    std::vector<int> defIndex;     ///< PC -> dense def index (-1 none)
    std::vector<uint8_t> defReg;   ///< per def: the register written

    size_t words = 0;              ///< bitset words per block
    std::vector<uint64_t> inSets;  ///< per block: reaching-def IN set
    std::vector<std::vector<isa::Addr>> defUses; ///< per def: use PCs
    std::vector<uint32_t> heights; ///< per PC

    /** Per block: register readiness heights at block entry. */
    std::vector<std::array<uint32_t, isa::kNumArchRegs>> entryHeights;
    bool hitCap = false;
};

} // namespace mg::analysis

#endif // MG_ANALYSIS_DATAFLOW_H
